// Severity storage: the data part of a CUBE experiment.
//
// The severity function maps (metric, call path, thread) index triples onto
// accumulated metric values.  Two interchangeable stores are provided:
//
//  * DenseSeverity  — one contiguous 3-D array; O(1) access, O(M*C*T) space.
//  * SparseSeverity — hash map keyed by the packed triple; space scales with
//                     the number of non-zero entries.  Real experiments are
//                     typically sparse along the (metric x call path) plane
//                     (a communication metric is zero in compute regions).
//
// Besides the virtual per-cell interface, each concrete store exposes a
// NON-VIRTUAL bulk access path (docs/STORAGE.md): DenseSeverity hands out
// contiguous spans over the flattened row-major [metric][cnode][thread]
// cell space, SparseSeverity offers ordered non-zero visitation over
// flattened cell ranges.  Operators and display aggregation are built on
// these, so dense combines become flat vectorizable loops and sparse
// operands cost O(nnz) instead of O(M*C*T).
//
// Both stores additionally support a read-only FILE-BACKED mode over an
// mmapped CUBESEV1 blob (src/io/severity_format.hpp): the bulk accessors
// then yield borrowed views over file-backed pages, release_cells() lets
// a streaming consumer drop pages behind its sweep, and the first
// mutation transparently detaches into an owned copy.
//
// bench/bench_storage quantifies the trade-off (ablation A3 in DESIGN.md).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/mmap_file.hpp"
#include "common/types.hpp"

namespace cube {

/// Which severity container an Experiment uses.
enum class StorageKind { Dense, Sparse };

/// Abstract severity container over a fixed (metrics x cnodes x threads)
/// index space.  Out-of-range indices throw cube::Error.
class SeverityStore {
 public:
  SeverityStore(std::size_t metrics, std::size_t cnodes, std::size_t threads);
  virtual ~SeverityStore() = default;

  [[nodiscard]] std::size_t num_metrics() const noexcept { return metrics_; }
  [[nodiscard]] std::size_t num_cnodes() const noexcept { return cnodes_; }
  [[nodiscard]] std::size_t num_threads() const noexcept { return threads_; }

  /// Cells per metric row of the flattened cell space.
  [[nodiscard]] std::size_t plane_size() const noexcept {
    return cnodes_ * threads_;
  }
  /// Total number of cells (metrics * cnodes * threads).
  [[nodiscard]] std::size_t num_cells() const noexcept {
    return metrics_ * plane_size();
  }

  [[nodiscard]] virtual Severity get(MetricIndex m, CnodeIndex c,
                                     ThreadIndex t) const = 0;
  virtual void set(MetricIndex m, CnodeIndex c, ThreadIndex t, Severity v) = 0;
  virtual void add(MetricIndex m, CnodeIndex c, ThreadIndex t, Severity v) = 0;

  /// Number of stored entries with a non-zero value.
  [[nodiscard]] virtual std::size_t nonzero_count() const = 0;
  /// Approximate heap bytes used by the container (for the ablation bench).
  /// File-backed stores report only their heap-side bookkeeping; mapped
  /// pages are not heap and are reclaimable via release_cells().
  [[nodiscard]] virtual std::size_t memory_bytes() const = 0;

  /// True when the store's cells live in mapped file pages rather than
  /// heap memory (see file-backed mode above).
  [[nodiscard]] virtual bool file_backed() const noexcept { return false; }

  /// Streaming hint: the flattened cell range [lo, hi) has been consumed
  /// and will not be revisited.  File-backed stores drop the resident
  /// pages holding those cells (values stay readable — pages re-fault
  /// from the blob); owned stores ignore it.  Never throws.
  virtual void release_cells(std::uint64_t lo, std::uint64_t hi) const {
    (void)lo;
    (void)hi;
  }

  [[nodiscard]] virtual StorageKind kind() const noexcept = 0;
  [[nodiscard]] virtual std::unique_ptr<SeverityStore> clone() const = 0;

 protected:
  void check(MetricIndex m, CnodeIndex c, ThreadIndex t) const;

  std::size_t metrics_;
  std::size_t cnodes_;
  std::size_t threads_;
};

/// Contiguous row-major [metric][cnode][thread] array.
///
/// Owned mode holds the cells in a std::vector.  Borrowed (file-backed)
/// mode views a span of cells inside a shared MappedFile — reads and all
/// bulk accessors work unchanged; the first set()/add()/cells_mut()
/// copies the view into an owned vector (detach-on-write).
class DenseSeverity final : public SeverityStore {
 public:
  DenseSeverity(std::size_t metrics, std::size_t cnodes, std::size_t threads);

  /// Borrowed mode over `cells` (exactly metrics*cnodes*threads values)
  /// living inside `backing` at byte offset cells.data() - backing->data().
  DenseSeverity(std::size_t metrics, std::size_t cnodes, std::size_t threads,
                std::span<const Severity> cells,
                std::shared_ptr<const MappedFile> backing);

  // view_ must re-anchor onto the destination's vector when copying an
  // owned store; the defaults would alias the source.
  DenseSeverity(const DenseSeverity& other);
  DenseSeverity& operator=(const DenseSeverity& other);
  DenseSeverity(DenseSeverity&& other) noexcept;
  DenseSeverity& operator=(DenseSeverity&& other) noexcept;
  ~DenseSeverity() override = default;

  [[nodiscard]] Severity get(MetricIndex m, CnodeIndex c,
                             ThreadIndex t) const override;
  void set(MetricIndex m, CnodeIndex c, ThreadIndex t, Severity v) override;
  void add(MetricIndex m, CnodeIndex c, ThreadIndex t, Severity v) override;
  [[nodiscard]] std::size_t nonzero_count() const override;
  [[nodiscard]] std::size_t memory_bytes() const override;
  [[nodiscard]] bool file_backed() const noexcept override {
    return backing_ != nullptr;
  }
  void release_cells(std::uint64_t lo, std::uint64_t hi) const override;
  [[nodiscard]] StorageKind kind() const noexcept override {
    return StorageKind::Dense;
  }
  [[nodiscard]] std::unique_ptr<SeverityStore> clone() const override;

  // --- non-virtual bulk access (docs/STORAGE.md) ---------------------------
  // The backing array is row-major [metric][cnode][thread]; flattened cell
  // index = (m * cnodes + c) * threads + t.

  /// The whole cell space as one contiguous read-only span.
  [[nodiscard]] std::span<const Severity> cells() const noexcept {
    return view_;
  }
  /// Read-only view of the flattened cell range [lo, hi).
  [[nodiscard]] std::span<const Severity> cells(std::size_t lo,
                                                std::size_t hi) const noexcept {
    return view_.subspan(lo, hi - lo);
  }
  /// Mutable view of the flattened cell range [lo, hi).  Disjoint ranges
  /// may be written concurrently; that is what makes dense results safe
  /// for chunk-parallel operator kernels.  Detaches a file-backed store
  /// (NOT thread-safe against concurrent reads — detach before sharing).
  [[nodiscard]] std::span<Severity> cells_mut(std::size_t lo, std::size_t hi) {
    detach();
    return std::span<Severity>(values_).subspan(lo, hi - lo);
  }

 private:
  [[nodiscard]] std::size_t offset(MetricIndex m, CnodeIndex c,
                                   ThreadIndex t) const noexcept {
    return (m * cnodes_ + c) * threads_ + t;
  }
  /// Copies a borrowed view into owned storage; no-op when already owned.
  void detach();

  std::vector<Severity> values_;
  std::span<const Severity> view_;  ///< always valid: values_ or the mapping
  std::shared_ptr<const MappedFile> backing_;  ///< non-null in borrowed mode
};

/// Hash-map store for sparse experiments; zero entries are not materialized.
///
/// Owned mode is the hash map.  Borrowed (file-backed) mode views the two
/// sorted CUBESEV1 columns (ascending keys, matching values) inside a
/// shared MappedFile: get() binary-searches, ordered visitation walks the
/// columns directly (no sort needed), and the first mutation detaches
/// into the hash map.
class SparseSeverity final : public SeverityStore {
 public:
  SparseSeverity(std::size_t metrics, std::size_t cnodes, std::size_t threads);

  /// Borrowed mode over the sorted key/value columns (equal lengths, keys
  /// strictly ascending) living inside `backing`.
  SparseSeverity(std::size_t metrics, std::size_t cnodes, std::size_t threads,
                 std::span<const std::uint64_t> keys,
                 std::span<const Severity> values,
                 std::shared_ptr<const MappedFile> backing);

  [[nodiscard]] Severity get(MetricIndex m, CnodeIndex c,
                             ThreadIndex t) const override;
  void set(MetricIndex m, CnodeIndex c, ThreadIndex t, Severity v) override;
  void add(MetricIndex m, CnodeIndex c, ThreadIndex t, Severity v) override;
  [[nodiscard]] std::size_t nonzero_count() const override;
  [[nodiscard]] std::size_t memory_bytes() const override;
  [[nodiscard]] bool file_backed() const noexcept override {
    return backing_ != nullptr;
  }
  void release_cells(std::uint64_t lo, std::uint64_t hi) const override;
  [[nodiscard]] StorageKind kind() const noexcept override {
    return StorageKind::Sparse;
  }
  [[nodiscard]] std::unique_ptr<SeverityStore> clone() const override;

  // --- non-virtual bulk access (docs/STORAGE.md) ---------------------------
  // Flattened cell keys use the same row-major layout as DenseSeverity:
  // key = (m * cnodes + c) * threads + t.  Visitation is ALWAYS in
  // ascending key order — i.e. the exact order a per-cell (m, c, t) triple
  // loop touches the non-zero cells — so severity reductions built on it
  // are bit-identical to the per-cell reference path.

  /// Sorted snapshot of all (flattened key, value) entries, ascending by
  /// key.  O(nnz log nnz) owned (O(nnz) copy when file-backed, already
  /// sorted); operator kernels take one snapshot per operand and
  /// binary-search it per chunk instead of re-scanning the hash map.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, Severity>> sorted_cells()
      const;

  /// Bulk insert of (flattened key, value) entries: value semantics of
  /// set() per entry (zero erases) without the per-cell virtual dispatch
  /// or triple decomposition.  Keys must be < num_cells() (throws
  /// cube::Error otherwise); later entries overwrite earlier ones.  The
  /// operator kernels merge their per-chunk staging buffers through this.
  void set_cells(std::span<const std::pair<std::uint64_t, Severity>> entries);

  /// Writes every non-zero value into cells[key]; cells must span the full
  /// flattened cell space.  Unlike the ordered visitors this is one
  /// unordered hash-map pass — distinct keys write distinct slots, so no
  /// order is observable.  O(nnz) with no sort: the way to materialize a
  /// near-dense operand (see densify threshold in the operator kernels).
  void scatter_into(std::span<Severity> cells) const;

  /// Calls fn(flattened_key, value) for every non-zero cell with key in
  /// [lo, hi), ascending by key.  One hash-map scan + sort of the hits
  /// owned; a binary search + column walk when file-backed.  Use
  /// sorted_cells() when visiting many ranges of the same store.
  template <typename Fn>
  void for_each_nonzero(std::uint64_t lo, std::uint64_t hi, Fn&& fn) const {
    if (backing_ != nullptr) {
      const auto begin = std::lower_bound(keys_view_.begin(), keys_view_.end(),
                                          lo);
      for (auto it = begin; it != keys_view_.end() && *it < hi; ++it) {
        const Severity v = vals_view_[static_cast<std::size_t>(
            it - keys_view_.begin())];
        if (v != 0.0) fn(*it, v);
      }
      return;
    }
    std::vector<std::pair<std::uint64_t, Severity>> hits;
    for (const auto& [k, v] : values_) {
      if (k >= lo && k < hi) hits.emplace_back(k, v);
    }
    std::sort(hits.begin(), hits.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [k, v] : hits) fn(k, v);
  }

 private:
  [[nodiscard]] std::uint64_t key(MetricIndex m, CnodeIndex c,
                                  ThreadIndex t) const noexcept {
    return (static_cast<std::uint64_t>(m) * cnodes_ + c) * threads_ + t;
  }
  /// Loads the borrowed columns into the hash map; no-op when owned.
  void detach();

  std::unordered_map<std::uint64_t, Severity> values_;
  std::span<const std::uint64_t> keys_view_;  ///< borrowed mode only
  std::span<const Severity> vals_view_;       ///< borrowed mode only
  std::shared_ptr<const MappedFile> backing_;  ///< non-null in borrowed mode
};

/// Factory for the requested storage kind.
[[nodiscard]] std::unique_ptr<SeverityStore> make_severity_store(
    StorageKind kind, std::size_t metrics, std::size_t cnodes,
    std::size_t threads);

}  // namespace cube
