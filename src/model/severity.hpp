// Severity storage: the data part of a CUBE experiment.
//
// The severity function maps (metric, call path, thread) index triples onto
// accumulated metric values.  Two interchangeable stores are provided:
//
//  * DenseSeverity  — one contiguous 3-D array; O(1) access, O(M*C*T) space.
//  * SparseSeverity — hash map keyed by the packed triple; space scales with
//                     the number of non-zero entries.  Real experiments are
//                     typically sparse along the (metric x call path) plane
//                     (a communication metric is zero in compute regions).
//
// bench/bench_storage quantifies the trade-off (ablation A3 in DESIGN.md).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace cube {

/// Which severity container an Experiment uses.
enum class StorageKind { Dense, Sparse };

/// Abstract severity container over a fixed (metrics x cnodes x threads)
/// index space.  Out-of-range indices throw cube::Error.
class SeverityStore {
 public:
  SeverityStore(std::size_t metrics, std::size_t cnodes, std::size_t threads);
  virtual ~SeverityStore() = default;

  [[nodiscard]] std::size_t num_metrics() const noexcept { return metrics_; }
  [[nodiscard]] std::size_t num_cnodes() const noexcept { return cnodes_; }
  [[nodiscard]] std::size_t num_threads() const noexcept { return threads_; }

  [[nodiscard]] virtual Severity get(MetricIndex m, CnodeIndex c,
                                     ThreadIndex t) const = 0;
  virtual void set(MetricIndex m, CnodeIndex c, ThreadIndex t, Severity v) = 0;
  virtual void add(MetricIndex m, CnodeIndex c, ThreadIndex t, Severity v) = 0;

  /// Number of stored entries with a non-zero value.
  [[nodiscard]] virtual std::size_t nonzero_count() const = 0;
  /// Approximate heap bytes used by the container (for the ablation bench).
  [[nodiscard]] virtual std::size_t memory_bytes() const = 0;

  [[nodiscard]] virtual StorageKind kind() const noexcept = 0;
  [[nodiscard]] virtual std::unique_ptr<SeverityStore> clone() const = 0;

 protected:
  void check(MetricIndex m, CnodeIndex c, ThreadIndex t) const;

  std::size_t metrics_;
  std::size_t cnodes_;
  std::size_t threads_;
};

/// Contiguous row-major [metric][cnode][thread] array.
class DenseSeverity final : public SeverityStore {
 public:
  DenseSeverity(std::size_t metrics, std::size_t cnodes, std::size_t threads);

  [[nodiscard]] Severity get(MetricIndex m, CnodeIndex c,
                             ThreadIndex t) const override;
  void set(MetricIndex m, CnodeIndex c, ThreadIndex t, Severity v) override;
  void add(MetricIndex m, CnodeIndex c, ThreadIndex t, Severity v) override;
  [[nodiscard]] std::size_t nonzero_count() const override;
  [[nodiscard]] std::size_t memory_bytes() const override;
  [[nodiscard]] StorageKind kind() const noexcept override {
    return StorageKind::Dense;
  }
  [[nodiscard]] std::unique_ptr<SeverityStore> clone() const override;

 private:
  [[nodiscard]] std::size_t offset(MetricIndex m, CnodeIndex c,
                                   ThreadIndex t) const noexcept {
    return (m * cnodes_ + c) * threads_ + t;
  }

  std::vector<Severity> values_;
};

/// Hash-map store for sparse experiments; zero entries are not materialized.
class SparseSeverity final : public SeverityStore {
 public:
  SparseSeverity(std::size_t metrics, std::size_t cnodes, std::size_t threads);

  [[nodiscard]] Severity get(MetricIndex m, CnodeIndex c,
                             ThreadIndex t) const override;
  void set(MetricIndex m, CnodeIndex c, ThreadIndex t, Severity v) override;
  void add(MetricIndex m, CnodeIndex c, ThreadIndex t, Severity v) override;
  [[nodiscard]] std::size_t nonzero_count() const override;
  [[nodiscard]] std::size_t memory_bytes() const override;
  [[nodiscard]] StorageKind kind() const noexcept override {
    return StorageKind::Sparse;
  }
  [[nodiscard]] std::unique_ptr<SeverityStore> clone() const override;

 private:
  [[nodiscard]] std::uint64_t key(MetricIndex m, CnodeIndex c,
                                  ThreadIndex t) const noexcept {
    return (static_cast<std::uint64_t>(m) * cnodes_ + c) * threads_ + t;
  }

  std::unordered_map<std::uint64_t, Severity> values_;
};

/// Factory for the requested storage kind.
[[nodiscard]] std::unique_ptr<SeverityStore> make_severity_store(
    StorageKind kind, std::size_t metrics, std::size_t cnodes,
    std::size_t threads);

}  // namespace cube
