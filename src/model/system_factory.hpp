// Convenience factory for regular system hierarchies: one machine with
// `num_nodes` SMP nodes hosting `procs_per_node` single-threaded processes
// each, ranks assigned node-major.  Both CONE and EXPERT use this to map a
// run's cluster description into the system dimension.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "model/metadata.hpp"

namespace cube {

/// Populates the system dimension of `metadata` and returns the threads in
/// (rank-major, thread-id-minor) order — thread index = rank *
/// threads_per_proc + tid.  `coords`, if non-empty, must hold one
/// coordinate vector per rank (topology extension, paper §7).
std::vector<const Thread*> build_regular_system(
    Metadata& metadata, const std::string& machine_name, int num_nodes,
    int procs_per_node, std::span<const std::vector<long>> coords = {},
    int threads_per_proc = 1);

}  // namespace cube
