#include "model/metric.hpp"

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace cube {

std::string_view unit_name(Unit u) noexcept {
  switch (u) {
    case Unit::Seconds: return "sec";
    case Unit::Bytes: return "bytes";
    case Unit::Occurrences: return "occ";
  }
  return "occ";
}

Unit parse_unit(std::string_view s) {
  const std::string l = to_lower(trim(s));
  if (l == "sec" || l == "s" || l == "seconds") return Unit::Seconds;
  if (l == "bytes" || l == "b" || l == "byte") return Unit::Bytes;
  if (l == "occ" || l == "occurrences" || l == "#" || l == "count") {
    return Unit::Occurrences;
  }
  throw Error("unknown unit of measurement: '" + std::string(s) + "'");
}

Metric::Metric(MetricIndex index, std::string unique_name,
               std::string display_name, Unit unit, std::string description,
               Metric* parent)
    : index_(index),
      unique_name_(std::move(unique_name)),
      display_name_(std::move(display_name)),
      unit_(unit),
      description_(std::move(description)),
      parent_(parent) {}

const Metric& Metric::root() const noexcept {
  const Metric* m = this;
  while (m->parent_ != nullptr) m = m->parent_;
  return *m;
}

std::size_t Metric::depth() const noexcept {
  std::size_t d = 0;
  for (const Metric* m = parent_; m != nullptr; m = m->parent_) ++d;
  return d;
}

}  // namespace cube
