// Experiment: a valid instance of the CUBE data model.
//
// An experiment consists of metadata (the entity sets and their hierarchies,
// see model/metadata.hpp) and data (the severity function, see
// model/severity.hpp).  Operators of the algebra consume and produce whole
// Experiments — the closure property of the paper.
//
// Severity convention used throughout this library: stored values are
// EXCLUSIVE with respect to both the metric hierarchy and the call tree;
// every fraction of a measured quantity appears in exactly one
// (metric, call path, thread) cell ("single representation").  Inclusive
// values are linear aggregations over subtrees, so all element-wise
// operators commute with aggregation.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "model/metadata.hpp"
#include "model/severity.hpp"

namespace cube {

/// Whether an experiment holds measured or operator-produced data.
enum class ExperimentKind { Original, Derived };

/// Metadata + severity data + descriptive attributes.
///
/// Metadata is immutable and shared: many experiments (repeated runs of one
/// binary, operator results over digest-equal operands) hold the SAME
/// Metadata instance.  The severity store is sized to the metadata at
/// construction and the frozen contract guarantees they can never desync.
class Experiment {
 public:
  /// Takes ownership of `metadata`, freezing it; allocates a zeroed severity
  /// store sized to it.  `metadata` must not be null.
  explicit Experiment(std::unique_ptr<Metadata> metadata,
                      StorageKind storage = StorageKind::Dense);

  /// Shares already-frozen metadata; allocates a zeroed severity store sized
  /// to it.  `metadata` must be non-null and frozen.
  explicit Experiment(std::shared_ptr<const Metadata> metadata,
                      StorageKind storage = StorageKind::Dense);

  /// Shares already-frozen metadata and adopts a pre-built severity store
  /// (e.g. an mmap-backed CUBESEV1 view).  The store's shape must match
  /// the metadata; throws cube::Error otherwise.
  Experiment(std::shared_ptr<const Metadata> metadata,
             std::unique_ptr<SeverityStore> severity);

  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;
  Experiment(Experiment&&) = default;
  Experiment& operator=(Experiment&&) = default;

  [[nodiscard]] const Metadata& metadata() const noexcept { return *metadata_; }
  /// The shared handle — lets callers construct further experiments over the
  /// same metadata instance without copying it.
  [[nodiscard]] const std::shared_ptr<const Metadata>& metadata_ptr()
      const noexcept {
    return metadata_;
  }
  [[nodiscard]] const SeverityStore& severity() const noexcept {
    return *severity_;
  }
  [[nodiscard]] SeverityStore& severity() noexcept { return *severity_; }

  // --- severity access by entity ------------------------------------------
  [[nodiscard]] Severity get(const Metric& m, const Cnode& c,
                             const Thread& t) const {
    return severity_->get(m.index(), c.index(), t.index());
  }
  void set(const Metric& m, const Cnode& c, const Thread& t, Severity v) {
    severity_->set(m.index(), c.index(), t.index(), v);
  }
  void add(const Metric& m, const Cnode& c, const Thread& t, Severity v) {
    severity_->add(m.index(), c.index(), t.index(), v);
  }

  // --- attributes -----------------------------------------------------------
  /// Sets a string attribute (name, provenance, experiment parameters...).
  void set_attribute(std::string key, std::string value);
  /// Returns the attribute value or "" if unset.
  [[nodiscard]] std::string attribute(std::string_view key) const;
  [[nodiscard]] const std::map<std::string, std::string>& attributes()
      const noexcept {
    return attributes_;
  }

  /// Experiment display name (attribute "cube::name").
  [[nodiscard]] std::string name() const { return attribute("cube::name"); }
  void set_name(std::string name) {
    set_attribute("cube::name", std::move(name));
  }

  /// Original vs derived (attribute "cube::kind", default original).
  [[nodiscard]] ExperimentKind kind() const;
  /// Marks the experiment as derived and records how it was produced
  /// (attribute "cube::provenance"), e.g. "difference(before, after)".
  void mark_derived(std::string provenance);
  [[nodiscard]] std::string provenance() const {
    return attribute("cube::provenance");
  }

  // --- aggregation helpers ---------------------------------------------------
  // Full-view aggregation lives in display/aggregate; these simple sums are
  // for tests, operators, and report code.

  /// Exclusive value of `m` summed over all call paths and threads.
  [[nodiscard]] Severity sum_metric(const Metric& m) const;
  /// Inclusive value of `m` (its whole metric subtree) summed over all call
  /// paths and threads; the number the display shows at a collapsed root.
  [[nodiscard]] Severity sum_metric_tree(const Metric& m) const;
  /// Exclusive value of `m` at call path `c` summed over all threads.
  [[nodiscard]] Severity sum_cnode(const Metric& m, const Cnode& c) const;
  /// Inclusive over both the metric subtree and the call subtree, summed
  /// over all threads.
  [[nodiscard]] Severity sum_tree(const Metric& m, const Cnode& c) const;
  /// Grand total of one metric tree identified by its root; equals
  /// sum_metric_tree(root).
  [[nodiscard]] Severity total(const Metric& root) const {
    return sum_metric_tree(root);
  }

  /// Deep copy (same storage kind unless overridden).
  [[nodiscard]] Experiment clone() const;
  [[nodiscard]] Experiment clone(StorageKind storage) const;

 private:
  std::shared_ptr<const Metadata> metadata_;
  std::unique_ptr<SeverityStore> severity_;
  std::map<std::string, std::string> attributes_;
};

}  // namespace cube
