#include "model/experiment.hpp"

#include "common/error.hpp"

namespace cube {

Experiment::Experiment(std::unique_ptr<Metadata> metadata, StorageKind storage)
    : Experiment(freeze_metadata(std::move(metadata)), storage) {}

Experiment::Experiment(std::shared_ptr<const Metadata> metadata,
                       StorageKind storage)
    : metadata_(std::move(metadata)) {
  if (metadata_ == nullptr) {
    throw Error("experiment requires non-null metadata");
  }
  if (!metadata_->frozen()) {
    throw Error("experiment requires frozen metadata");
  }
  severity_ =
      make_severity_store(storage, metadata_->num_metrics(),
                          metadata_->num_cnodes(), metadata_->num_threads());
}

Experiment::Experiment(std::shared_ptr<const Metadata> metadata,
                       std::unique_ptr<SeverityStore> severity)
    : metadata_(std::move(metadata)), severity_(std::move(severity)) {
  if (metadata_ == nullptr) {
    throw Error("experiment requires non-null metadata");
  }
  if (!metadata_->frozen()) {
    throw Error("experiment requires frozen metadata");
  }
  if (severity_ == nullptr) {
    throw Error("experiment requires a severity store");
  }
  if (severity_->num_metrics() != metadata_->num_metrics() ||
      severity_->num_cnodes() != metadata_->num_cnodes() ||
      severity_->num_threads() != metadata_->num_threads()) {
    throw Error("severity store shape does not match experiment metadata");
  }
}

void Experiment::set_attribute(std::string key, std::string value) {
  attributes_[std::move(key)] = std::move(value);
}

std::string Experiment::attribute(std::string_view key) const {
  const auto it = attributes_.find(std::string(key));
  return it != attributes_.end() ? it->second : std::string();
}

ExperimentKind Experiment::kind() const {
  return attribute("cube::kind") == "derived" ? ExperimentKind::Derived
                                              : ExperimentKind::Original;
}

void Experiment::mark_derived(std::string provenance) {
  set_attribute("cube::kind", "derived");
  set_attribute("cube::provenance", std::move(provenance));
}

Severity Experiment::sum_metric(const Metric& m) const {
  Severity sum = 0.0;
  for (CnodeIndex c = 0; c < metadata_->num_cnodes(); ++c) {
    for (ThreadIndex t = 0; t < metadata_->num_threads(); ++t) {
      sum += severity_->get(m.index(), c, t);
    }
  }
  return sum;
}

Severity Experiment::sum_metric_tree(const Metric& m) const {
  Severity sum = sum_metric(m);
  for (const Metric* child : m.children()) {
    sum += sum_metric_tree(*child);
  }
  return sum;
}

Severity Experiment::sum_cnode(const Metric& m, const Cnode& c) const {
  Severity sum = 0.0;
  for (ThreadIndex t = 0; t < metadata_->num_threads(); ++t) {
    sum += severity_->get(m.index(), c.index(), t);
  }
  return sum;
}

namespace {

// Inclusive over the call subtree for one fixed metric.
Severity call_subtree_sum(const Experiment& e, const Metric& m,
                          const Cnode& c) {
  Severity sum = e.sum_cnode(m, c);
  for (const Cnode* cc : c.children()) {
    sum += call_subtree_sum(e, m, *cc);
  }
  return sum;
}

}  // namespace

Severity Experiment::sum_tree(const Metric& m, const Cnode& c) const {
  // Metric subtree x call subtree: descend the metric tree once and the call
  // tree once per metric, so every (m', c') pair is counted exactly once.
  Severity sum = call_subtree_sum(*this, m, c);
  for (const Metric* mc : m.children()) {
    sum += sum_tree(*mc, c);
  }
  return sum;
}

Experiment Experiment::clone() const { return clone(severity_->kind()); }

Experiment Experiment::clone(StorageKind storage) const {
  // Metadata is immutable, so the copy SHARES it — cloning an experiment
  // copies only severity data and attributes.
  Experiment copy(metadata_, storage);
  if (storage == severity_->kind()) {
    copy.severity_ = severity_->clone();
  } else {
    for (MetricIndex m = 0; m < metadata_->num_metrics(); ++m) {
      for (CnodeIndex c = 0; c < metadata_->num_cnodes(); ++c) {
        for (ThreadIndex t = 0; t < metadata_->num_threads(); ++t) {
          const Severity v = severity_->get(m, c, t);
          if (v != 0.0) copy.severity_->set(m, c, t, v);
        }
      }
    }
  }
  copy.attributes_ = attributes_;
  return copy;
}

}  // namespace cube
