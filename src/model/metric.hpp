// Metric dimension of the CUBE data model.
//
// The metric dimension is a forest.  Each metric has a unique name and a
// unit of measurement; within one tree all metrics must share the unit
// (the paper's constraint that a parent metric *includes* its children,
// e.g. execution time includes communication time).
//
// Severity convention: the severity stored for a metric is EXCLUSIVE with
// respect to the metric hierarchy — each fraction of a measured quantity is
// stored at exactly one (most specific) metric.  Inclusive values are
// obtained by aggregating over the metric subtree (see display/aggregate).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace cube {

/// Unit of measurement for a metric; the paper admits exactly these three.
enum class Unit { Seconds, Bytes, Occurrences };

/// Canonical lower-case spelling ("sec", "bytes", "occ").
[[nodiscard]] std::string_view unit_name(Unit u) noexcept;

/// Parses any of the canonical spellings; throws cube::Error otherwise.
[[nodiscard]] Unit parse_unit(std::string_view s);

class Metadata;

/// One node of the metric forest.  Instances are owned by a Metadata and
/// addressed by their dense MetricIndex.
class Metric {
 public:
  [[nodiscard]] MetricIndex index() const noexcept { return index_; }
  /// Identity for cross-experiment matching (with the unit).
  [[nodiscard]] const std::string& unique_name() const noexcept {
    return unique_name_;
  }
  /// Human-readable name used by the display.
  [[nodiscard]] const std::string& display_name() const noexcept {
    return display_name_;
  }
  [[nodiscard]] Unit unit() const noexcept { return unit_; }
  [[nodiscard]] const std::string& description() const noexcept {
    return description_;
  }

  /// Parent in the metric tree, or nullptr for a root.
  [[nodiscard]] const Metric* parent() const noexcept { return parent_; }
  [[nodiscard]] const std::vector<const Metric*>& children() const noexcept {
    return children_;
  }
  [[nodiscard]] bool is_root() const noexcept { return parent_ == nullptr; }

  /// Root of the tree this metric belongs to.
  [[nodiscard]] const Metric& root() const noexcept;

  /// Depth below the root (root has depth 0).
  [[nodiscard]] std::size_t depth() const noexcept;

 private:
  friend class Metadata;
  Metric(MetricIndex index, std::string unique_name, std::string display_name,
         Unit unit, std::string description, Metric* parent);

  MetricIndex index_;
  std::string unique_name_;
  std::string display_name_;
  Unit unit_;
  std::string description_;
  Metric* parent_;
  std::vector<const Metric*> children_;
};

}  // namespace cube
