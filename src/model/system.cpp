#include "model/system.hpp"

namespace cube {

Machine::Machine(std::size_t index, std::string name)
    : index_(index), name_(std::move(name)) {}

SysNode::SysNode(std::size_t index, std::string name, Machine* machine)
    : index_(index), name_(std::move(name)), machine_(machine) {}

Process::Process(std::size_t index, std::string name, long rank, SysNode* node)
    : index_(index), name_(std::move(name)), rank_(rank), node_(node) {}

Thread::Thread(ThreadIndex index, std::string name, long thread_id,
               Process* process)
    : index_(index),
      name_(std::move(name)),
      thread_id_(thread_id),
      process_(process) {}

long Thread::rank() const noexcept { return process_->rank(); }

}  // namespace cube
