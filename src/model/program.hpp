// Program dimension of the CUBE data model: regions, call sites, and the
// call tree (a forest of call paths).
//
// A Region is a code section (function, loop, basic block).  A CallSite is
// a source location where control may move from one region into another;
// its target region is the *callee*.  A Cnode (call-tree node) represents a
// call path and points to the call site through which it was entered.
// Several Cnodes may reference the same CallSite (same site reached via
// different paths).
//
// Flat profiles are represented as a forest of single-node call trees, one
// per region, exactly as the paper prescribes.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace cube {

class Metadata;

/// A code section: function, loop, or other basic block.
class Region {
 public:
  [[nodiscard]] std::size_t index() const noexcept { return index_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// Module (source file / library) containing the region; part of the
  /// region's cross-experiment identity together with the name.
  [[nodiscard]] const std::string& module() const noexcept { return module_; }
  [[nodiscard]] long begin_line() const noexcept { return begin_line_; }
  [[nodiscard]] long end_line() const noexcept { return end_line_; }
  [[nodiscard]] const std::string& description() const noexcept {
    return description_;
  }

 private:
  friend class Metadata;
  Region(std::size_t index, std::string name, std::string module,
         long begin_line, long end_line, std::string description);

  std::size_t index_;
  std::string name_;
  std::string module_;
  long begin_line_;
  long end_line_;
  std::string description_;
};

/// A source location from which control enters a callee region.
///
/// Line numbers are recorded but deliberately excluded from the
/// cross-experiment equality relation: the paper observes that line numbers
/// shift across code versions while still denoting the "same" call site.
class CallSite {
 public:
  [[nodiscard]] std::size_t index() const noexcept { return index_; }
  [[nodiscard]] const std::string& file() const noexcept { return file_; }
  [[nodiscard]] long line() const noexcept { return line_; }
  [[nodiscard]] const Region& callee() const noexcept { return *callee_; }

 private:
  friend class Metadata;
  CallSite(std::size_t index, std::string file, long line,
           const Region* callee);

  std::size_t index_;
  std::string file_;
  long line_;
  const Region* callee_;
};

/// A call-tree node (call path).  The forest may have multiple roots, e.g.
/// for programs built from several executables.
class Cnode {
 public:
  [[nodiscard]] CnodeIndex index() const noexcept { return index_; }
  [[nodiscard]] const CallSite& callsite() const noexcept { return *callsite_; }
  /// Convenience: the region this call path executes in.
  [[nodiscard]] const Region& callee() const noexcept {
    return callsite_->callee();
  }
  [[nodiscard]] const Cnode* parent() const noexcept { return parent_; }
  [[nodiscard]] const std::vector<const Cnode*>& children() const noexcept {
    return children_;
  }
  [[nodiscard]] bool is_root() const noexcept { return parent_ == nullptr; }
  [[nodiscard]] std::size_t depth() const noexcept;

  /// Renders the call path as "main/solver/fft" (callee names root-to-here).
  [[nodiscard]] std::string path() const;

 private:
  friend class Metadata;
  Cnode(CnodeIndex index, const CallSite* callsite, Cnode* parent);

  CnodeIndex index_;
  const CallSite* callsite_;
  Cnode* parent_;
  std::vector<const Cnode*> children_;
};

}  // namespace cube
