// Metadata: the entity part of a CUBE experiment.
//
// Owns every metric, region, call site, call-tree node, machine, node,
// process, and thread of one experiment, assigns them dense indices, and
// enforces the data model's constraints (validate()).
//
// Lifecycle: build -> freeze -> share.  A Metadata starts mutable; the
// add_* factories grow it.  freeze() ends the build phase: it computes a
// structural FNV-1a digest over all entities once and permanently rejects
// further mutation.  Frozen metadata is immutable and therefore safely
// shared — Experiment holds std::shared_ptr<const Metadata>, so a series
// of repeated runs of one binary carries ONE metadata instance through
// operators, the query cache, and the repository (see DESIGN.md,
// "Metadata lifecycle").
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "model/metric.hpp"
#include "model/program.hpp"
#include "model/system.hpp"

namespace cube {

/// Owner and factory of all entities in one experiment's metadata.
///
/// Entities are created through the add_* factories and live as long as the
/// Metadata; references handed out remain stable (entities are
/// heap-allocated and never moved).  After freeze() the add_* factories
/// throw and the structural digest() becomes available.
class Metadata {
 public:
  Metadata() = default;
  Metadata(const Metadata&) = delete;
  Metadata& operator=(const Metadata&) = delete;
  Metadata(Metadata&&) = default;
  Metadata& operator=(Metadata&&) = default;

  // --- metric dimension -------------------------------------------------
  /// Adds a metric.  `parent` may be nullptr for a new root.  Throws
  /// ValidationError on duplicate unique name or on a unit differing from
  /// the parent's (all metrics of one tree share the unit).
  Metric& add_metric(const Metric* parent, std::string unique_name,
                     std::string display_name, Unit unit,
                     std::string description = {});

  // --- program dimension -------------------------------------------------
  /// Adds a region.  (name, module) need not be unique — the same function
  /// may legitimately be defined per template instance — but matching during
  /// integration uses the first occurrence.
  Region& add_region(std::string name, std::string module, long begin_line,
                     long end_line, std::string description = {});

  /// Adds a call site entering `callee`.
  CallSite& add_callsite(const Region& callee, std::string file, long line);

  /// Adds a call-tree node below `parent` (nullptr for a new root).
  Cnode& add_cnode(const Cnode* parent, const CallSite& callsite);

  /// Convenience for flat profiles and generated trees: creates a region,
  /// a synthetic call site, and a cnode in one step.
  Cnode& add_cnode_for_region(const Cnode* parent, const Region& callee,
                              std::string file = {}, long line = -1);

  // --- system dimension ----------------------------------------------------
  Machine& add_machine(std::string name);
  SysNode& add_node(Machine& machine, std::string name);
  /// Throws ValidationError on duplicate rank.
  Process& add_process(SysNode& node, std::string name, long rank);
  /// Throws ValidationError on duplicate (rank, thread id).
  Thread& add_thread(Process& process, std::string name, long thread_id);

  // --- lifecycle ------------------------------------------------------------
  /// Ends the build phase: computes the structural digest once and rejects
  /// any further add_* call with ValidationError.  Idempotent.
  void freeze();
  [[nodiscard]] bool frozen() const noexcept { return frozen_; }
  /// Structural FNV-1a digest over all entities in index order.  Two
  /// Metadata instances built identically have equal digests; any
  /// structural change (name, unit, hierarchy, rank, coords, ...) changes
  /// it.  Throws Error if called before freeze().
  [[nodiscard]] std::uint64_t digest() const;

  // --- access --------------------------------------------------------------
  [[nodiscard]] const std::vector<std::unique_ptr<Metric>>& metrics()
      const noexcept {
    return metrics_;
  }
  [[nodiscard]] std::vector<const Metric*> metric_roots() const;
  [[nodiscard]] const std::vector<std::unique_ptr<Region>>& regions()
      const noexcept {
    return regions_;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<CallSite>>& callsites()
      const noexcept {
    return callsites_;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<Cnode>>& cnodes()
      const noexcept {
    return cnodes_;
  }
  [[nodiscard]] std::vector<const Cnode*> cnode_roots() const;
  [[nodiscard]] const std::vector<std::unique_ptr<Machine>>& machines()
      const noexcept {
    return machines_;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<SysNode>>& nodes()
      const noexcept {
    return nodes_;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<Process>>& processes()
      const noexcept {
    return processes_;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<Thread>>& threads()
      const noexcept {
    return threads_;
  }

  [[nodiscard]] std::size_t num_metrics() const noexcept {
    return metrics_.size();
  }
  [[nodiscard]] std::size_t num_cnodes() const noexcept {
    return cnodes_.size();
  }
  [[nodiscard]] std::size_t num_threads() const noexcept {
    return threads_.size();
  }

  /// Finds a metric by unique name; nullptr if absent.
  [[nodiscard]] const Metric* find_metric(std::string_view unique_name) const;
  /// Finds a region by (name, module); nullptr if absent.
  [[nodiscard]] const Region* find_region(std::string_view name,
                                          std::string_view module) const;
  /// Finds a process by rank; nullptr if absent.
  [[nodiscard]] const Process* find_process(long rank) const;

  /// Checks all data-model constraints; throws ValidationError on the first
  /// violation.  Constraints: per-tree unit consistency (enforced on
  /// construction, rechecked here), every process owns >= 1 thread, ranks
  /// and (rank, thread id) pairs unique (also enforced on construction).
  void validate() const;

  /// Deep copy preserving all dense indices.  The copy is UNFROZEN — this
  /// is the escape hatch for building a variant of existing metadata.
  [[nodiscard]] std::unique_ptr<Metadata> clone() const;

 private:
  void require_mutable(const char* operation) const;

  std::vector<std::unique_ptr<Metric>> metrics_;
  std::vector<std::unique_ptr<Region>> regions_;
  std::vector<std::unique_ptr<CallSite>> callsites_;
  std::vector<std::unique_ptr<Cnode>> cnodes_;
  std::vector<std::unique_ptr<Machine>> machines_;
  std::vector<std::unique_ptr<SysNode>> nodes_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<std::unique_ptr<Thread>> threads_;
  bool frozen_ = false;
  std::uint64_t digest_ = 0;
};

/// Freezes `metadata` and converts it to the shared-immutable form every
/// consumer of built metadata wants.  The canonical end of a build phase.
[[nodiscard]] std::shared_ptr<const Metadata> freeze_metadata(
    std::unique_ptr<Metadata> metadata);

/// Digest-keyed pool of frozen metadata: interning a newly parsed or built
/// instance returns the pooled instance with the same structural digest if
/// one is still alive, so repeated-run experiments loaded independently
/// end up SHARING one metadata object (pointer-equal), which in turn lets
/// the algebra's integration short-circuit structurally.
///
/// Entries are held weakly — the interner keeps nothing alive and cleans
/// expired slots opportunistically.  Thread-safe (the query engine interns
/// from pool workers).
class MetadataInterner {
 public:
  /// Returns the pooled equivalent of `metadata` (which must be frozen),
  /// registering it if its digest is new or expired.
  [[nodiscard]] std::shared_ptr<const Metadata> intern(
      std::shared_ptr<const Metadata> metadata);

  /// The pooled instance for `digest`, or nullptr if none is alive.
  [[nodiscard]] std::shared_ptr<const Metadata> lookup(
      std::uint64_t digest) const;

  /// Number of live pooled instances.
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  mutable std::unordered_map<std::uint64_t, std::weak_ptr<const Metadata>>
      pool_;
};

}  // namespace cube
