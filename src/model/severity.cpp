#include "model/severity.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"

namespace cube {

SeverityStore::SeverityStore(std::size_t metrics, std::size_t cnodes,
                             std::size_t threads)
    : metrics_(metrics), cnodes_(cnodes), threads_(threads) {}

void SeverityStore::check(MetricIndex m, CnodeIndex c, ThreadIndex t) const {
  if (m >= metrics_ || c >= cnodes_ || t >= threads_) {
    throw Error("severity index (" + std::to_string(m) + "," +
                std::to_string(c) + "," + std::to_string(t) +
                ") out of range (" + std::to_string(metrics_) + "," +
                std::to_string(cnodes_) + "," + std::to_string(threads_) +
                ")");
  }
}

DenseSeverity::DenseSeverity(std::size_t metrics, std::size_t cnodes,
                             std::size_t threads)
    : SeverityStore(metrics, cnodes, threads),
      values_(metrics * cnodes * threads, 0.0) {}

Severity DenseSeverity::get(MetricIndex m, CnodeIndex c, ThreadIndex t) const {
  check(m, c, t);
  return values_[offset(m, c, t)];
}

void DenseSeverity::set(MetricIndex m, CnodeIndex c, ThreadIndex t,
                        Severity v) {
  check(m, c, t);
  values_[offset(m, c, t)] = v;
}

void DenseSeverity::add(MetricIndex m, CnodeIndex c, ThreadIndex t,
                        Severity v) {
  check(m, c, t);
  values_[offset(m, c, t)] += v;
}

std::size_t DenseSeverity::nonzero_count() const {
  std::size_t n = 0;
  for (const Severity v : values_) {
    if (v != 0.0) ++n;
  }
  return n;
}

std::size_t DenseSeverity::memory_bytes() const {
  return values_.capacity() * sizeof(Severity);
}

std::unique_ptr<SeverityStore> DenseSeverity::clone() const {
  return std::make_unique<DenseSeverity>(*this);
}

SparseSeverity::SparseSeverity(std::size_t metrics, std::size_t cnodes,
                               std::size_t threads)
    : SeverityStore(metrics, cnodes, threads) {}

Severity SparseSeverity::get(MetricIndex m, CnodeIndex c,
                             ThreadIndex t) const {
  check(m, c, t);
  const auto it = values_.find(key(m, c, t));
  return it != values_.end() ? it->second : 0.0;
}

void SparseSeverity::set(MetricIndex m, CnodeIndex c, ThreadIndex t,
                         Severity v) {
  check(m, c, t);
  if (v == 0.0) {
    values_.erase(key(m, c, t));
  } else {
    values_[key(m, c, t)] = v;
  }
}

void SparseSeverity::add(MetricIndex m, CnodeIndex c, ThreadIndex t,
                         Severity v) {
  check(m, c, t);
  if (v == 0.0) return;
  auto [it, inserted] = values_.try_emplace(key(m, c, t), v);
  if (!inserted) {
    it->second += v;
    if (it->second == 0.0) values_.erase(it);
  }
}

std::size_t SparseSeverity::nonzero_count() const {
  std::size_t n = 0;
  for (const auto& [k, v] : values_) {
    if (v != 0.0) ++n;
  }
  return n;
}

std::size_t SparseSeverity::memory_bytes() const {
  // Bucket array + one node allocation per entry (libstdc++ layout estimate).
  return values_.bucket_count() * sizeof(void*) +
         values_.size() *
             (sizeof(std::uint64_t) + sizeof(Severity) + 2 * sizeof(void*));
}

void SparseSeverity::set_cells(
    std::span<const std::pair<std::uint64_t, Severity>> entries) {
  values_.reserve(values_.size() + entries.size());
  const std::uint64_t cells = num_cells();
  for (const auto& [k, v] : entries) {
    if (k >= cells) {
      throw Error("severity cell key " + std::to_string(k) +
                  " out of range (" + std::to_string(cells) + " cells)");
    }
    if (v == 0.0) {
      values_.erase(k);
    } else {
      values_[k] = v;
    }
  }
}

void SparseSeverity::scatter_into(std::span<Severity> cells) const {
  for (const auto& [k, v] : values_) cells[k] = v;
}

std::vector<std::pair<std::uint64_t, Severity>> SparseSeverity::sorted_cells()
    const {
  std::vector<std::pair<std::uint64_t, Severity>> cells(values_.begin(),
                                                        values_.end());
  std::sort(cells.begin(), cells.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return cells;
}

std::unique_ptr<SeverityStore> SparseSeverity::clone() const {
  return std::make_unique<SparseSeverity>(*this);
}

std::unique_ptr<SeverityStore> make_severity_store(StorageKind kind,
                                                   std::size_t metrics,
                                                   std::size_t cnodes,
                                                   std::size_t threads) {
  if (kind == StorageKind::Dense) {
    return std::make_unique<DenseSeverity>(metrics, cnodes, threads);
  }
  return std::make_unique<SparseSeverity>(metrics, cnodes, threads);
}

}  // namespace cube
