#include "model/severity.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"

namespace cube {

SeverityStore::SeverityStore(std::size_t metrics, std::size_t cnodes,
                             std::size_t threads)
    : metrics_(metrics), cnodes_(cnodes), threads_(threads) {}

void SeverityStore::check(MetricIndex m, CnodeIndex c, ThreadIndex t) const {
  if (m >= metrics_ || c >= cnodes_ || t >= threads_) {
    throw Error("severity index (" + std::to_string(m) + "," +
                std::to_string(c) + "," + std::to_string(t) +
                ") out of range (" + std::to_string(metrics_) + "," +
                std::to_string(cnodes_) + "," + std::to_string(threads_) +
                ")");
  }
}

DenseSeverity::DenseSeverity(std::size_t metrics, std::size_t cnodes,
                             std::size_t threads)
    : SeverityStore(metrics, cnodes, threads),
      values_(metrics * cnodes * threads, 0.0),
      view_(values_) {}

DenseSeverity::DenseSeverity(std::size_t metrics, std::size_t cnodes,
                             std::size_t threads,
                             std::span<const Severity> cells,
                             std::shared_ptr<const MappedFile> backing)
    : SeverityStore(metrics, cnodes, threads),
      view_(cells),
      backing_(std::move(backing)) {
  if (cells.size() != num_cells()) {
    throw Error("borrowed dense severity has " + std::to_string(cells.size()) +
                " cells, shape needs " + std::to_string(num_cells()));
  }
  if (backing_ == nullptr) {
    throw Error("borrowed dense severity requires a file backing");
  }
}

DenseSeverity::DenseSeverity(const DenseSeverity& other)
    : SeverityStore(other),
      values_(other.values_),
      view_(other.backing_ != nullptr ? other.view_
                                      : std::span<const Severity>(values_)),
      backing_(other.backing_) {}

DenseSeverity& DenseSeverity::operator=(const DenseSeverity& other) {
  if (this != &other) {
    SeverityStore::operator=(other);
    values_ = other.values_;
    backing_ = other.backing_;
    view_ = backing_ != nullptr ? other.view_
                                : std::span<const Severity>(values_);
  }
  return *this;
}

DenseSeverity::DenseSeverity(DenseSeverity&& other) noexcept
    : SeverityStore(other),
      values_(std::move(other.values_)),
      // A moved vector keeps its heap buffer, so re-anchoring on values_
      // yields the same cells the source viewed.
      view_(other.backing_ != nullptr ? other.view_
                                      : std::span<const Severity>(values_)),
      backing_(std::move(other.backing_)) {}

DenseSeverity& DenseSeverity::operator=(DenseSeverity&& other) noexcept {
  if (this != &other) {
    SeverityStore::operator=(other);
    values_ = std::move(other.values_);
    backing_ = std::move(other.backing_);
    view_ = backing_ != nullptr ? other.view_
                                : std::span<const Severity>(values_);
  }
  return *this;
}

void DenseSeverity::detach() {
  if (backing_ == nullptr) return;
  values_.assign(view_.begin(), view_.end());
  view_ = values_;
  backing_.reset();
}

Severity DenseSeverity::get(MetricIndex m, CnodeIndex c, ThreadIndex t) const {
  check(m, c, t);
  return view_[offset(m, c, t)];
}

void DenseSeverity::set(MetricIndex m, CnodeIndex c, ThreadIndex t,
                        Severity v) {
  check(m, c, t);
  detach();
  values_[offset(m, c, t)] = v;
}

void DenseSeverity::add(MetricIndex m, CnodeIndex c, ThreadIndex t,
                        Severity v) {
  check(m, c, t);
  detach();
  values_[offset(m, c, t)] += v;
}

std::size_t DenseSeverity::nonzero_count() const {
  std::size_t n = 0;
  for (const Severity v : view_) {
    if (v != 0.0) ++n;
  }
  return n;
}

std::size_t DenseSeverity::memory_bytes() const {
  return values_.capacity() * sizeof(Severity);
}

void DenseSeverity::release_cells(std::uint64_t lo, std::uint64_t hi) const {
  if (backing_ == nullptr || lo >= hi) return;
  const auto* base = reinterpret_cast<const std::byte*>(view_.data());
  const std::size_t offset =
      static_cast<std::size_t>(base - backing_->data()) +
      static_cast<std::size_t>(lo) * sizeof(Severity);
  backing_->release_range(offset,
                          static_cast<std::size_t>(hi - lo) * sizeof(Severity));
}

std::unique_ptr<SeverityStore> DenseSeverity::clone() const {
  auto copy = std::make_unique<DenseSeverity>(metrics_, cnodes_, threads_);
  std::copy(view_.begin(), view_.end(), copy->values_.begin());
  return copy;
}

SparseSeverity::SparseSeverity(std::size_t metrics, std::size_t cnodes,
                               std::size_t threads)
    : SeverityStore(metrics, cnodes, threads) {}

SparseSeverity::SparseSeverity(std::size_t metrics, std::size_t cnodes,
                               std::size_t threads,
                               std::span<const std::uint64_t> keys,
                               std::span<const Severity> values,
                               std::shared_ptr<const MappedFile> backing)
    : SeverityStore(metrics, cnodes, threads),
      keys_view_(keys),
      vals_view_(values),
      backing_(std::move(backing)) {
  if (keys.size() != values.size()) {
    throw Error("borrowed sparse severity column lengths differ");
  }
  if (backing_ == nullptr) {
    throw Error("borrowed sparse severity requires a file backing");
  }
  const std::uint64_t cells = num_cells();
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (keys[i] >= cells || (i > 0 && keys[i] <= prev)) {
      throw Error("borrowed sparse severity keys must be strictly ascending "
                  "and in range");
    }
    prev = keys[i];
  }
}

void SparseSeverity::detach() {
  if (backing_ == nullptr) return;
  values_.reserve(keys_view_.size());
  for (std::size_t i = 0; i < keys_view_.size(); ++i) {
    if (vals_view_[i] != 0.0) values_.emplace(keys_view_[i], vals_view_[i]);
  }
  keys_view_ = {};
  vals_view_ = {};
  backing_.reset();
}

Severity SparseSeverity::get(MetricIndex m, CnodeIndex c,
                             ThreadIndex t) const {
  check(m, c, t);
  const std::uint64_t k = key(m, c, t);
  if (backing_ != nullptr) {
    const auto it =
        std::lower_bound(keys_view_.begin(), keys_view_.end(), k);
    if (it != keys_view_.end() && *it == k) {
      return vals_view_[static_cast<std::size_t>(it - keys_view_.begin())];
    }
    return 0.0;
  }
  const auto it = values_.find(k);
  return it != values_.end() ? it->second : 0.0;
}

void SparseSeverity::set(MetricIndex m, CnodeIndex c, ThreadIndex t,
                         Severity v) {
  check(m, c, t);
  detach();
  if (v == 0.0) {
    values_.erase(key(m, c, t));
  } else {
    values_[key(m, c, t)] = v;
  }
}

void SparseSeverity::add(MetricIndex m, CnodeIndex c, ThreadIndex t,
                         Severity v) {
  check(m, c, t);
  if (v == 0.0) return;
  detach();
  auto [it, inserted] = values_.try_emplace(key(m, c, t), v);
  if (!inserted) {
    it->second += v;
    if (it->second == 0.0) values_.erase(it);
  }
}

std::size_t SparseSeverity::nonzero_count() const {
  if (backing_ != nullptr) {
    // The CUBESEV1 writer drops zero cells, so entry count == nonzero
    // count — O(1) from the key column's extent, without faulting in the
    // mmapped values pages (the operator dispatch heuristic polls this
    // before every file-backed streaming reduction).
    return keys_view_.size();
  }
  std::size_t n = 0;
  for (const auto& [k, v] : values_) {
    if (v != 0.0) ++n;
  }
  return n;
}

std::size_t SparseSeverity::memory_bytes() const {
  // Bucket array + one node allocation per entry (libstdc++ layout estimate).
  // Borrowed columns are mapped file pages, not heap.
  return values_.bucket_count() * sizeof(void*) +
         values_.size() *
             (sizeof(std::uint64_t) + sizeof(Severity) + 2 * sizeof(void*));
}

void SparseSeverity::release_cells(std::uint64_t lo, std::uint64_t hi) const {
  if (backing_ == nullptr || lo >= hi || keys_view_.empty()) return;
  // Find the entry index range holding keys in [lo, hi) and release the
  // corresponding slices of both columns.
  const auto begin = std::lower_bound(keys_view_.begin(), keys_view_.end(), lo);
  const auto end = std::lower_bound(begin, keys_view_.end(), hi);
  if (begin == end) return;
  const auto i0 = static_cast<std::size_t>(begin - keys_view_.begin());
  const auto i1 = static_cast<std::size_t>(end - keys_view_.begin());
  const auto* kbase = reinterpret_cast<const std::byte*>(keys_view_.data());
  const auto* vbase = reinterpret_cast<const std::byte*>(vals_view_.data());
  backing_->release_range(
      static_cast<std::size_t>(kbase - backing_->data()) +
          i0 * sizeof(std::uint64_t),
      (i1 - i0) * sizeof(std::uint64_t));
  backing_->release_range(
      static_cast<std::size_t>(vbase - backing_->data()) +
          i0 * sizeof(Severity),
      (i1 - i0) * sizeof(Severity));
}

void SparseSeverity::set_cells(
    std::span<const std::pair<std::uint64_t, Severity>> entries) {
  detach();
  values_.reserve(values_.size() + entries.size());
  const std::uint64_t cells = num_cells();
  for (const auto& [k, v] : entries) {
    if (k >= cells) {
      throw Error("severity cell key " + std::to_string(k) +
                  " out of range (" + std::to_string(cells) + " cells)");
    }
    if (v == 0.0) {
      values_.erase(k);
    } else {
      values_[k] = v;
    }
  }
}

void SparseSeverity::scatter_into(std::span<Severity> cells) const {
  if (backing_ != nullptr) {
    for (std::size_t i = 0; i < keys_view_.size(); ++i) {
      cells[keys_view_[i]] = vals_view_[i];
    }
    return;
  }
  for (const auto& [k, v] : values_) cells[k] = v;
}

std::vector<std::pair<std::uint64_t, Severity>> SparseSeverity::sorted_cells()
    const {
  if (backing_ != nullptr) {
    std::vector<std::pair<std::uint64_t, Severity>> cells;
    cells.reserve(keys_view_.size());
    for (std::size_t i = 0; i < keys_view_.size(); ++i) {
      if (vals_view_[i] != 0.0) {
        cells.emplace_back(keys_view_[i], vals_view_[i]);
      }
    }
    return cells;
  }
  std::vector<std::pair<std::uint64_t, Severity>> cells(values_.begin(),
                                                        values_.end());
  std::sort(cells.begin(), cells.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return cells;
}

std::unique_ptr<SeverityStore> SparseSeverity::clone() const {
  auto copy = std::make_unique<SparseSeverity>(metrics_, cnodes_, threads_);
  if (backing_ != nullptr) {
    copy->values_.reserve(keys_view_.size());
    for (std::size_t i = 0; i < keys_view_.size(); ++i) {
      if (vals_view_[i] != 0.0) {
        copy->values_.emplace(keys_view_[i], vals_view_[i]);
      }
    }
  } else {
    copy->values_ = values_;
  }
  return copy;
}

std::unique_ptr<SeverityStore> make_severity_store(StorageKind kind,
                                                   std::size_t metrics,
                                                   std::size_t cnodes,
                                                   std::size_t threads) {
  if (kind == StorageKind::Dense) {
    return std::make_unique<DenseSeverity>(metrics, cnodes, threads);
  }
  return std::make_unique<SparseSeverity>(metrics, cnodes, threads);
}

}  // namespace cube
