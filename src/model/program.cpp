#include "model/program.hpp"

namespace cube {

Region::Region(std::size_t index, std::string name, std::string module,
               long begin_line, long end_line, std::string description)
    : index_(index),
      name_(std::move(name)),
      module_(std::move(module)),
      begin_line_(begin_line),
      end_line_(end_line),
      description_(std::move(description)) {}

CallSite::CallSite(std::size_t index, std::string file, long line,
                   const Region* callee)
    : index_(index), file_(std::move(file)), line_(line), callee_(callee) {}

Cnode::Cnode(CnodeIndex index, const CallSite* callsite, Cnode* parent)
    : index_(index), callsite_(callsite), parent_(parent) {}

std::size_t Cnode::depth() const noexcept {
  std::size_t d = 0;
  for (const Cnode* c = parent_; c != nullptr; c = c->parent()) ++d;
  return d;
}

std::string Cnode::path() const {
  std::vector<const Cnode*> chain;
  for (const Cnode* c = this; c != nullptr; c = c->parent()) {
    chain.push_back(c);
  }
  std::string out;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    if (!out.empty()) out += '/';
    out += (*it)->callee().name();
  }
  return out;
}

}  // namespace cube
