#include "model/metadata.hpp"

#include <unordered_map>
#include <unordered_set>

#include "common/error.hpp"

namespace cube {

Metric& Metadata::add_metric(const Metric* parent, std::string unique_name,
                             std::string display_name, Unit unit,
                             std::string description) {
  if (find_metric(unique_name) != nullptr) {
    throw ValidationError("duplicate metric unique name '" + unique_name +
                          "'");
  }
  if (parent != nullptr && parent->unit() != unit) {
    throw ValidationError(
        "metric '" + unique_name + "' has unit '" +
        std::string(unit_name(unit)) + "' but its parent '" +
        parent->unique_name() + "' has unit '" +
        std::string(unit_name(parent->unit())) +
        "' (all metrics of one tree must share the unit)");
  }
  auto* parent_mut =
      parent != nullptr ? metrics_[parent->index()].get() : nullptr;
  auto metric = std::unique_ptr<Metric>(
      new Metric(metrics_.size(), std::move(unique_name),
                 std::move(display_name), unit, std::move(description),
                 parent_mut));
  Metric& ref = *metric;
  if (parent_mut != nullptr) parent_mut->children_.push_back(&ref);
  metrics_.push_back(std::move(metric));
  return ref;
}

Region& Metadata::add_region(std::string name, std::string module,
                             long begin_line, long end_line,
                             std::string description) {
  auto region = std::unique_ptr<Region>(
      new Region(regions_.size(), std::move(name), std::move(module),
                 begin_line, end_line, std::move(description)));
  Region& ref = *region;
  regions_.push_back(std::move(region));
  return ref;
}

CallSite& Metadata::add_callsite(const Region& callee, std::string file,
                                 long line) {
  if (callee.index() >= regions_.size() ||
      regions_[callee.index()].get() != &callee) {
    throw ValidationError("call site callee belongs to another metadata set");
  }
  auto cs = std::unique_ptr<CallSite>(
      new CallSite(callsites_.size(), std::move(file), line, &callee));
  CallSite& ref = *cs;
  callsites_.push_back(std::move(cs));
  return ref;
}

Cnode& Metadata::add_cnode(const Cnode* parent, const CallSite& callsite) {
  if (callsite.index() >= callsites_.size() ||
      callsites_[callsite.index()].get() != &callsite) {
    throw ValidationError("cnode call site belongs to another metadata set");
  }
  auto* parent_mut =
      parent != nullptr ? cnodes_[parent->index()].get() : nullptr;
  auto cnode = std::unique_ptr<Cnode>(
      new Cnode(cnodes_.size(), &callsite, parent_mut));
  Cnode& ref = *cnode;
  if (parent_mut != nullptr) parent_mut->children_.push_back(&ref);
  cnodes_.push_back(std::move(cnode));
  return ref;
}

Cnode& Metadata::add_cnode_for_region(const Cnode* parent,
                                      const Region& callee, std::string file,
                                      long line) {
  CallSite& cs = add_callsite(callee, std::move(file), line);
  return add_cnode(parent, cs);
}

Machine& Metadata::add_machine(std::string name) {
  auto machine =
      std::unique_ptr<Machine>(new Machine(machines_.size(), std::move(name)));
  Machine& ref = *machine;
  machines_.push_back(std::move(machine));
  return ref;
}

SysNode& Metadata::add_node(Machine& machine, std::string name) {
  auto node = std::unique_ptr<SysNode>(
      new SysNode(nodes_.size(), std::move(name), &machine));
  SysNode& ref = *node;
  machine.nodes_.push_back(&ref);
  nodes_.push_back(std::move(node));
  return ref;
}

Process& Metadata::add_process(SysNode& node, std::string name, long rank) {
  if (find_process(rank) != nullptr) {
    throw ValidationError("duplicate process rank " + std::to_string(rank));
  }
  auto proc = std::unique_ptr<Process>(
      new Process(processes_.size(), std::move(name), rank, &node));
  Process& ref = *proc;
  node.processes_.push_back(&ref);
  processes_.push_back(std::move(proc));
  return ref;
}

Thread& Metadata::add_thread(Process& process, std::string name,
                             long thread_id) {
  for (const Thread* t : process.threads()) {
    if (t->thread_id() == thread_id) {
      throw ValidationError("duplicate thread id " +
                            std::to_string(thread_id) + " in process rank " +
                            std::to_string(process.rank()));
    }
  }
  auto thread = std::unique_ptr<Thread>(
      new Thread(threads_.size(), std::move(name), thread_id, &process));
  Thread& ref = *thread;
  process.threads_.push_back(&ref);
  threads_.push_back(std::move(thread));
  return ref;
}

std::vector<const Metric*> Metadata::metric_roots() const {
  std::vector<const Metric*> roots;
  for (const auto& m : metrics_) {
    if (m->is_root()) roots.push_back(m.get());
  }
  return roots;
}

std::vector<const Cnode*> Metadata::cnode_roots() const {
  std::vector<const Cnode*> roots;
  for (const auto& c : cnodes_) {
    if (c->is_root()) roots.push_back(c.get());
  }
  return roots;
}

const Metric* Metadata::find_metric(std::string_view unique_name) const {
  for (const auto& m : metrics_) {
    if (m->unique_name() == unique_name) return m.get();
  }
  return nullptr;
}

const Region* Metadata::find_region(std::string_view name,
                                    std::string_view module) const {
  for (const auto& r : regions_) {
    if (r->name() == name && r->module() == module) return r.get();
  }
  return nullptr;
}

const Process* Metadata::find_process(long rank) const {
  for (const auto& p : processes_) {
    if (p->rank() == rank) return p.get();
  }
  return nullptr;
}

void Metadata::validate() const {
  // Unit consistency per metric tree.
  for (const auto& m : metrics_) {
    if (m->parent() != nullptr && m->parent()->unit() != m->unit()) {
      throw ValidationError("metric '" + m->unique_name() +
                            "' differs in unit from its parent");
    }
  }
  // Mandatory thread level: every process has at least one thread.
  for (const auto& p : processes_) {
    if (p->threads().empty()) {
      throw ValidationError("process rank " + std::to_string(p->rank()) +
                            " has no threads (thread level is mandatory)");
    }
  }
  // "Regions must be properly nested": within one module, the line ranges
  // of two regions must be disjoint or one must contain the other.
  for (const auto& a : regions_) {
    if (a->begin_line() < 0 || a->end_line() < a->begin_line()) continue;
    for (const auto& b : regions_) {
      if (a.get() == b.get() || a->module() != b->module()) continue;
      if (b->begin_line() < 0 || b->end_line() < b->begin_line()) continue;
      const bool disjoint =
          a->end_line() < b->begin_line() || b->end_line() < a->begin_line();
      const bool a_in_b = b->begin_line() <= a->begin_line() &&
                          a->end_line() <= b->end_line();
      const bool b_in_a = a->begin_line() <= b->begin_line() &&
                          b->end_line() <= a->end_line();
      if (!disjoint && !a_in_b && !b_in_a) {
        throw ValidationError("regions '" + a->name() + "' and '" +
                              b->name() + "' in module '" + a->module() +
                              "' overlap without nesting");
      }
    }
  }

  // Rank uniqueness (constructed-in, but re-checked for cloned/parsed data).
  std::unordered_set<long> ranks;
  for (const auto& p : processes_) {
    if (!ranks.insert(p->rank()).second) {
      throw ValidationError("duplicate process rank " +
                            std::to_string(p->rank()));
    }
  }
}

std::unique_ptr<Metadata> Metadata::clone() const {
  auto copy = std::make_unique<Metadata>();
  // Metric forest: parents always precede children in creation order, so a
  // single pass reproduces the structure with identical indices.
  for (const auto& m : metrics_) {
    const Metric* parent =
        m->parent() != nullptr ? copy->metrics_[m->parent()->index()].get()
                               : nullptr;
    copy->add_metric(parent, m->unique_name(), m->display_name(), m->unit(),
                     m->description());
  }
  for (const auto& r : regions_) {
    copy->add_region(r->name(), r->module(), r->begin_line(), r->end_line(),
                     r->description());
  }
  for (const auto& cs : callsites_) {
    copy->add_callsite(*copy->regions_[cs->callee().index()], cs->file(),
                       cs->line());
  }
  for (const auto& c : cnodes_) {
    const Cnode* parent =
        c->parent() != nullptr ? copy->cnodes_[c->parent()->index()].get()
                               : nullptr;
    copy->add_cnode(parent, *copy->callsites_[c->callsite().index()]);
  }
  for (const auto& m : machines_) copy->add_machine(m->name());
  for (const auto& n : nodes_) {
    copy->add_node(*copy->machines_[n->machine().index()], n->name());
  }
  for (const auto& p : processes_) {
    Process& np = copy->add_process(*copy->nodes_[p->node().index()],
                                    p->name(), p->rank());
    if (p->coords()) np.set_coords(*p->coords());
  }
  for (const auto& t : threads_) {
    copy->add_thread(*copy->processes_[t->process().index()], t->name(),
                     t->thread_id());
  }
  return copy;
}

}  // namespace cube
