#include "model/metadata.hpp"

#include <unordered_map>
#include <unordered_set>

#include "common/digest.hpp"
#include "common/error.hpp"

namespace cube {

void Metadata::require_mutable(const char* operation) const {
  if (frozen_) {
    throw ValidationError(std::string(operation) +
                          " on frozen metadata (experiments share immutable "
                          "metadata; clone() to build a variant)");
  }
}

Metric& Metadata::add_metric(const Metric* parent, std::string unique_name,
                             std::string display_name, Unit unit,
                             std::string description) {
  require_mutable("add_metric");
  if (find_metric(unique_name) != nullptr) {
    throw ValidationError("duplicate metric unique name '" + unique_name +
                          "'");
  }
  if (parent != nullptr && parent->unit() != unit) {
    throw ValidationError(
        "metric '" + unique_name + "' has unit '" +
        std::string(unit_name(unit)) + "' but its parent '" +
        parent->unique_name() + "' has unit '" +
        std::string(unit_name(parent->unit())) +
        "' (all metrics of one tree must share the unit)");
  }
  auto* parent_mut =
      parent != nullptr ? metrics_[parent->index()].get() : nullptr;
  auto metric = std::unique_ptr<Metric>(
      new Metric(metrics_.size(), std::move(unique_name),
                 std::move(display_name), unit, std::move(description),
                 parent_mut));
  Metric& ref = *metric;
  if (parent_mut != nullptr) parent_mut->children_.push_back(&ref);
  metrics_.push_back(std::move(metric));
  return ref;
}

Region& Metadata::add_region(std::string name, std::string module,
                             long begin_line, long end_line,
                             std::string description) {
  require_mutable("add_region");
  auto region = std::unique_ptr<Region>(
      new Region(regions_.size(), std::move(name), std::move(module),
                 begin_line, end_line, std::move(description)));
  Region& ref = *region;
  regions_.push_back(std::move(region));
  return ref;
}

CallSite& Metadata::add_callsite(const Region& callee, std::string file,
                                 long line) {
  require_mutable("add_callsite");
  if (callee.index() >= regions_.size() ||
      regions_[callee.index()].get() != &callee) {
    throw ValidationError("call site callee belongs to another metadata set");
  }
  auto cs = std::unique_ptr<CallSite>(
      new CallSite(callsites_.size(), std::move(file), line, &callee));
  CallSite& ref = *cs;
  callsites_.push_back(std::move(cs));
  return ref;
}

Cnode& Metadata::add_cnode(const Cnode* parent, const CallSite& callsite) {
  require_mutable("add_cnode");
  if (callsite.index() >= callsites_.size() ||
      callsites_[callsite.index()].get() != &callsite) {
    throw ValidationError("cnode call site belongs to another metadata set");
  }
  auto* parent_mut =
      parent != nullptr ? cnodes_[parent->index()].get() : nullptr;
  auto cnode = std::unique_ptr<Cnode>(
      new Cnode(cnodes_.size(), &callsite, parent_mut));
  Cnode& ref = *cnode;
  if (parent_mut != nullptr) parent_mut->children_.push_back(&ref);
  cnodes_.push_back(std::move(cnode));
  return ref;
}

Cnode& Metadata::add_cnode_for_region(const Cnode* parent,
                                      const Region& callee, std::string file,
                                      long line) {
  CallSite& cs = add_callsite(callee, std::move(file), line);
  return add_cnode(parent, cs);
}

Machine& Metadata::add_machine(std::string name) {
  require_mutable("add_machine");
  auto machine =
      std::unique_ptr<Machine>(new Machine(machines_.size(), std::move(name)));
  Machine& ref = *machine;
  machines_.push_back(std::move(machine));
  return ref;
}

SysNode& Metadata::add_node(Machine& machine, std::string name) {
  require_mutable("add_node");
  auto node = std::unique_ptr<SysNode>(
      new SysNode(nodes_.size(), std::move(name), &machine));
  SysNode& ref = *node;
  machine.nodes_.push_back(&ref);
  nodes_.push_back(std::move(node));
  return ref;
}

Process& Metadata::add_process(SysNode& node, std::string name, long rank) {
  require_mutable("add_process");
  if (find_process(rank) != nullptr) {
    throw ValidationError("duplicate process rank " + std::to_string(rank));
  }
  auto proc = std::unique_ptr<Process>(
      new Process(processes_.size(), std::move(name), rank, &node));
  Process& ref = *proc;
  node.processes_.push_back(&ref);
  processes_.push_back(std::move(proc));
  return ref;
}

Thread& Metadata::add_thread(Process& process, std::string name,
                             long thread_id) {
  require_mutable("add_thread");
  for (const Thread* t : process.threads()) {
    if (t->thread_id() == thread_id) {
      throw ValidationError("duplicate thread id " +
                            std::to_string(thread_id) + " in process rank " +
                            std::to_string(process.rank()));
    }
  }
  auto thread = std::unique_ptr<Thread>(
      new Thread(threads_.size(), std::move(name), thread_id, &process));
  Thread& ref = *thread;
  process.threads_.push_back(&ref);
  threads_.push_back(std::move(thread));
  return ref;
}

namespace {

// Digest helpers: every field is either length-prefixed (strings) or
// fixed-width (integers), and every section starts with a tag and a count,
// so no two distinct entity sequences can serialize to the same byte
// stream (no ambiguity from concatenation).
void hash_str(Fnv1a& h, std::string_view s) {
  h.update(static_cast<std::uint64_t>(s.size()));
  h.update(s);
}

void hash_i64(Fnv1a& h, long v) {
  h.update(static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
}

void hash_section(Fnv1a& h, std::string_view tag, std::size_t count) {
  hash_str(h, tag);
  h.update(static_cast<std::uint64_t>(count));
}

// Index of an optional parent, with an out-of-band value for "root".
constexpr std::uint64_t kNoParent = ~std::uint64_t{0};

}  // namespace

void Metadata::freeze() {
  if (frozen_) return;
  Fnv1a h;
  hash_section(h, "metrics", metrics_.size());
  for (const auto& m : metrics_) {
    h.update(m->parent() != nullptr
                 ? static_cast<std::uint64_t>(m->parent()->index())
                 : kNoParent);
    hash_str(h, m->unique_name());
    hash_str(h, m->display_name());
    hash_str(h, unit_name(m->unit()));
    hash_str(h, m->description());
  }
  hash_section(h, "regions", regions_.size());
  for (const auto& r : regions_) {
    hash_str(h, r->name());
    hash_str(h, r->module());
    hash_i64(h, r->begin_line());
    hash_i64(h, r->end_line());
    hash_str(h, r->description());
  }
  hash_section(h, "callsites", callsites_.size());
  for (const auto& cs : callsites_) {
    h.update(static_cast<std::uint64_t>(cs->callee().index()));
    hash_str(h, cs->file());
    hash_i64(h, cs->line());
  }
  hash_section(h, "cnodes", cnodes_.size());
  for (const auto& c : cnodes_) {
    h.update(c->parent() != nullptr
                 ? static_cast<std::uint64_t>(c->parent()->index())
                 : kNoParent);
    h.update(static_cast<std::uint64_t>(c->callsite().index()));
  }
  hash_section(h, "machines", machines_.size());
  for (const auto& m : machines_) hash_str(h, m->name());
  hash_section(h, "nodes", nodes_.size());
  for (const auto& n : nodes_) {
    h.update(static_cast<std::uint64_t>(n->machine().index()));
    hash_str(h, n->name());
  }
  hash_section(h, "processes", processes_.size());
  for (const auto& p : processes_) {
    h.update(static_cast<std::uint64_t>(p->node().index()));
    hash_str(h, p->name());
    hash_i64(h, p->rank());
    if (p->coords()) {
      h.update(static_cast<std::uint64_t>(p->coords()->size()));
      for (long c : *p->coords()) hash_i64(h, c);
    } else {
      h.update(kNoParent);  // distinguishes "no coords" from empty coords
    }
  }
  hash_section(h, "threads", threads_.size());
  for (const auto& t : threads_) {
    h.update(static_cast<std::uint64_t>(t->process().index()));
    hash_str(h, t->name());
    hash_i64(h, t->thread_id());
  }
  digest_ = h.value();
  frozen_ = true;
}

std::uint64_t Metadata::digest() const {
  if (!frozen_) {
    throw Error("metadata digest requested before freeze()");
  }
  return digest_;
}

std::shared_ptr<const Metadata> freeze_metadata(
    std::unique_ptr<Metadata> metadata) {
  if (metadata == nullptr) throw Error("freeze_metadata: null metadata");
  metadata->freeze();
  return std::shared_ptr<const Metadata>(std::move(metadata));
}

std::shared_ptr<const Metadata> MetadataInterner::intern(
    std::shared_ptr<const Metadata> metadata) {
  if (metadata == nullptr) throw Error("interner: null metadata");
  const std::uint64_t key = metadata->digest();  // throws if unfrozen
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = pool_.try_emplace(key);
  if (!inserted) {
    if (auto live = it->second.lock()) return live;
  }
  it->second = metadata;
  return metadata;
}

std::shared_ptr<const Metadata> MetadataInterner::lookup(
    std::uint64_t digest) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = pool_.find(digest);
  if (it == pool_.end()) return nullptr;
  return it->second.lock();
}

std::size_t MetadataInterner::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t live = 0;
  for (auto it = pool_.begin(); it != pool_.end();) {
    if (it->second.expired()) {
      it = pool_.erase(it);
    } else {
      ++live;
      ++it;
    }
  }
  return live;
}

std::vector<const Metric*> Metadata::metric_roots() const {
  std::vector<const Metric*> roots;
  for (const auto& m : metrics_) {
    if (m->is_root()) roots.push_back(m.get());
  }
  return roots;
}

std::vector<const Cnode*> Metadata::cnode_roots() const {
  std::vector<const Cnode*> roots;
  for (const auto& c : cnodes_) {
    if (c->is_root()) roots.push_back(c.get());
  }
  return roots;
}

const Metric* Metadata::find_metric(std::string_view unique_name) const {
  for (const auto& m : metrics_) {
    if (m->unique_name() == unique_name) return m.get();
  }
  return nullptr;
}

const Region* Metadata::find_region(std::string_view name,
                                    std::string_view module) const {
  for (const auto& r : regions_) {
    if (r->name() == name && r->module() == module) return r.get();
  }
  return nullptr;
}

const Process* Metadata::find_process(long rank) const {
  for (const auto& p : processes_) {
    if (p->rank() == rank) return p.get();
  }
  return nullptr;
}

void Metadata::validate() const {
  // Unit consistency per metric tree.
  for (const auto& m : metrics_) {
    if (m->parent() != nullptr && m->parent()->unit() != m->unit()) {
      throw ValidationError("metric '" + m->unique_name() +
                            "' differs in unit from its parent");
    }
  }
  // Mandatory thread level: every process has at least one thread.
  for (const auto& p : processes_) {
    if (p->threads().empty()) {
      throw ValidationError("process rank " + std::to_string(p->rank()) +
                            " has no threads (thread level is mandatory)");
    }
  }
  // "Regions must be properly nested": within one module, the line ranges
  // of two regions must be disjoint or one must contain the other.
  for (const auto& a : regions_) {
    if (a->begin_line() < 0 || a->end_line() < a->begin_line()) continue;
    for (const auto& b : regions_) {
      if (a.get() == b.get() || a->module() != b->module()) continue;
      if (b->begin_line() < 0 || b->end_line() < b->begin_line()) continue;
      const bool disjoint =
          a->end_line() < b->begin_line() || b->end_line() < a->begin_line();
      const bool a_in_b = b->begin_line() <= a->begin_line() &&
                          a->end_line() <= b->end_line();
      const bool b_in_a = a->begin_line() <= b->begin_line() &&
                          b->end_line() <= a->end_line();
      if (!disjoint && !a_in_b && !b_in_a) {
        throw ValidationError("regions '" + a->name() + "' and '" +
                              b->name() + "' in module '" + a->module() +
                              "' overlap without nesting");
      }
    }
  }

  // Rank uniqueness (constructed-in, but re-checked for cloned/parsed data).
  std::unordered_set<long> ranks;
  for (const auto& p : processes_) {
    if (!ranks.insert(p->rank()).second) {
      throw ValidationError("duplicate process rank " +
                            std::to_string(p->rank()));
    }
  }
}

std::unique_ptr<Metadata> Metadata::clone() const {
  auto copy = std::make_unique<Metadata>();
  // Metric forest: parents always precede children in creation order, so a
  // single pass reproduces the structure with identical indices.
  for (const auto& m : metrics_) {
    const Metric* parent =
        m->parent() != nullptr ? copy->metrics_[m->parent()->index()].get()
                               : nullptr;
    copy->add_metric(parent, m->unique_name(), m->display_name(), m->unit(),
                     m->description());
  }
  for (const auto& r : regions_) {
    copy->add_region(r->name(), r->module(), r->begin_line(), r->end_line(),
                     r->description());
  }
  for (const auto& cs : callsites_) {
    copy->add_callsite(*copy->regions_[cs->callee().index()], cs->file(),
                       cs->line());
  }
  for (const auto& c : cnodes_) {
    const Cnode* parent =
        c->parent() != nullptr ? copy->cnodes_[c->parent()->index()].get()
                               : nullptr;
    copy->add_cnode(parent, *copy->callsites_[c->callsite().index()]);
  }
  for (const auto& m : machines_) copy->add_machine(m->name());
  for (const auto& n : nodes_) {
    copy->add_node(*copy->machines_[n->machine().index()], n->name());
  }
  for (const auto& p : processes_) {
    Process& np = copy->add_process(*copy->nodes_[p->node().index()],
                                    p->name(), p->rank());
    if (p->coords()) np.set_coords(*p->coords());
  }
  for (const auto& t : threads_) {
    copy->add_thread(*copy->processes_[t->process().index()], t->name(),
                     t->thread_id());
  }
  return copy;
}

}  // namespace cube
