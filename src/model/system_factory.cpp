#include "model/system_factory.hpp"

namespace cube {

std::vector<const Thread*> build_regular_system(
    Metadata& metadata, const std::string& machine_name, int num_nodes,
    int procs_per_node, std::span<const std::vector<long>> coords,
    int threads_per_proc) {
  Machine& machine = metadata.add_machine(machine_name);
  std::vector<const Thread*> threads;
  threads.reserve(static_cast<std::size_t>(num_nodes) *
                  static_cast<std::size_t>(procs_per_node));
  int rank = 0;
  for (int n = 0; n < num_nodes; ++n) {
    SysNode& node =
        metadata.add_node(machine, "node" + std::to_string(n));
    for (int p = 0; p < procs_per_node; ++p, ++rank) {
      Process& process = metadata.add_process(
          node, "rank " + std::to_string(rank), rank);
      if (static_cast<std::size_t>(rank) < coords.size()) {
        process.set_coords(coords[static_cast<std::size_t>(rank)]);
      }
      for (int t = 0; t < threads_per_proc; ++t) {
        threads.push_back(&metadata.add_thread(
            process, "thread " + std::to_string(t), t));
      }
    }
  }
  return threads;
}

}  // namespace cube
