#include "obs/report.hpp"

#include <algorithm>
#include <iomanip>
#include <map>
#include <ostream>
#include <sstream>
#include <string>

namespace cube::obs {

namespace {

/// Aggregated node of one thread's call tree: spans with the same path
/// collapse into visit counts and summed times.
struct TreeNode {
  const char* name = nullptr;
  std::uint64_t visits = 0;
  std::int64_t incl_ns = 0;
  std::int64_t excl_ns = 0;
  std::map<std::string, std::size_t> children;  ///< name -> node index
};

/// Builds the aggregated call tree of one thread snapshot.  Index 0 is a
/// synthetic root whose children are the thread's top-level spans.
std::vector<TreeNode> build_tree(const ThreadSnapshot& snap) {
  std::vector<TreeNode> nodes(1);
  // Maps a span record index to its aggregated node.
  std::vector<std::size_t> node_of(snap.spans.size(), 0);
  // Self time: inclusive minus the sum of direct children's inclusive.
  std::vector<std::int64_t> child_ns(snap.spans.size(), 0);
  for (std::size_t i = 0; i < snap.spans.size(); ++i) {
    const SpanRecord& rec = snap.spans[i];
    const std::size_t parent =
        rec.parent == kNoParent ? 0 : node_of[rec.parent];
    const auto [it, inserted] =
        nodes[parent].children.emplace(rec.name, nodes.size());
    if (inserted) {
      nodes.emplace_back();
      nodes.back().name = rec.name;
    }
    const std::size_t node = it->second;
    node_of[i] = node;
    const std::int64_t dur = rec.end_ns - rec.start_ns;
    nodes[node].visits += 1;
    nodes[node].incl_ns += dur;
    if (rec.parent != kNoParent) child_ns[rec.parent] += dur;
  }
  for (std::size_t i = 0; i < snap.spans.size(); ++i) {
    const std::int64_t dur = snap.spans[i].end_ns - snap.spans[i].start_ns;
    nodes[node_of[i]].excl_ns += std::max<std::int64_t>(0, dur - child_ns[i]);
  }
  return nodes;
}

double ms(std::int64_t ns) { return static_cast<double>(ns) / 1e6; }

void print_tree(std::ostream& out, const std::vector<TreeNode>& nodes,
                std::size_t index, int depth) {
  if (index != 0) {
    const TreeNode& n = nodes[index];
    out << "  " << std::string(static_cast<std::size_t>(depth) * 2, ' ')
        << n.name << "  x" << n.visits << "  incl " << std::fixed
        << std::setprecision(3) << ms(n.incl_ns) << " ms, excl "
        << ms(n.excl_ns) << " ms\n";
  }
  for (const auto& [name, child] : nodes[index].children) {
    print_tree(out, nodes, child, index == 0 ? depth : depth + 1);
  }
}

void json_escape(std::ostream& out, const char* s) {
  for (; s != nullptr && *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << "\\u" << std::hex << std::setw(4) << std::setfill('0')
              << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
          out << c;
        }
    }
  }
}

}  // namespace

void write_text_report(std::ostream& out,
                       const std::vector<ThreadSnapshot>& threads,
                       const MetricsRegistry& registry) {
  out << "== self-profile: spans ==\n";
  bool any = false;
  for (const ThreadSnapshot& snap : threads) {
    if (snap.spans.empty()) continue;
    any = true;
    out << "thread " << snap.thread_name << " (" << snap.spans.size()
        << " spans)\n";
    print_tree(out, build_tree(snap), 0, 0);
  }
  if (!any) out << "  (no spans recorded; was tracing enabled?)\n";
  out << "== self-profile: metrics ==\n";
  write_metrics_report(out, registry);
}

void write_text_report(std::ostream& out) {
  write_text_report(out, Tracer::instance().snapshot(),
                    MetricsRegistry::global());
}

void write_chrome_trace(std::ostream& out,
                        const std::vector<ThreadSnapshot>& threads) {
  // Rebase timestamps so the trace starts near zero (steady_clock's epoch
  // is arbitrary and its raw nanosecond counts overflow the viewer's
  // double microseconds).
  std::int64_t base = 0;
  bool have_base = false;
  for (const ThreadSnapshot& snap : threads) {
    for (const SpanRecord& rec : snap.spans) {
      if (!have_base || rec.start_ns < base) {
        base = rec.start_ns;
        have_base = true;
      }
    }
  }

  out << "{\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n";
  };
  for (std::size_t tid = 0; tid < threads.size(); ++tid) {
    const ThreadSnapshot& snap = threads[tid];
    sep();
    out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    json_escape(out, snap.thread_name.c_str());
    out << "\"}}";
    for (const SpanRecord& rec : snap.spans) {
      sep();
      out << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << tid << ",\"name\":\"";
      json_escape(out, rec.name);
      out << "\",\"cat\":\"cube\",\"ts\":" << std::fixed
          << std::setprecision(3)
          << static_cast<double>(rec.start_ns - base) / 1e3
          << ",\"dur\":" << static_cast<double>(rec.end_ns - rec.start_ns) / 1e3;
      if (rec.note != nullptr || rec.tag != 0) {
        out << ",\"args\":{";
        bool first_arg = true;
        if (rec.note != nullptr) {
          out << "\"note\":\"";
          json_escape(out, rec.note);
          out << "\"";
          first_arg = false;
        }
        if (rec.tag != 0) {
          if (!first_arg) out << ",";
          out << "\"tag\":" << rec.tag;
        }
        out << "}";
      }
      out << "}";
    }
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void write_chrome_trace(std::ostream& out) {
  write_chrome_trace(out, Tracer::instance().snapshot());
}

}  // namespace cube::obs
