#include "obs/tracer.hpp"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <tuple>

namespace cube::obs {

namespace detail {

namespace {

std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

/// Per-thread span buffer.  The owning thread appends lock-free; readers
/// (snapshot) see completed records through the end_ns release/acquire
/// pair.  The chunk list and the name are the only shared mutable
/// structure and sit behind a mutex taken on growth (rare) and reads.
class ThreadTrace {
 public:
  static constexpr std::size_t kChunkSlots = 1024;

  Slot* open(const char* name, const char* note) {
    const std::uint32_t index = size_.load(std::memory_order_relaxed);
    if (index / kChunkSlots == chunk_count_) {
      std::lock_guard<std::mutex> lock(mutex_);
      chunks_.push_back(std::make_unique<Slot[]>(kChunkSlots));
      ++chunk_count_;
    }
    Slot& slot = chunks_[index / kChunkSlots][index % kChunkSlots];
    slot.name = name;
    slot.note = note;
    slot.tag = 0;
    slot.parent = open_stack_.empty() ? kNoParent : open_stack_.back();
    slot.start_ns = now_ns();
    // Publish the initialized slot; end_ns is still 0 (open).
    size_.store(index + 1, std::memory_order_release);
    open_stack_.push_back(index);
    return &slot;
  }

  void close(Slot* slot) {
    // RAII scoping destroys inner spans first, so the closing span is the
    // top of the open stack — including during exception unwinding.
    open_stack_.pop_back();
    slot->end_ns.store(now_ns(), std::memory_order_release);
  }

  void set_name(std::string name) {
    std::lock_guard<std::mutex> lock(mutex_);
    name_ = std::move(name);
  }

  [[nodiscard]] std::string name() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return name_;
  }

  [[nodiscard]] std::size_t size() const {
    return size_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t open_depth() const { return open_stack_.size(); }

  /// Copies the slots [0, size()) — callers filter open ones.
  [[nodiscard]] std::vector<SpanRecord> copy_slots() const {
    const std::size_t n = size_.load(std::memory_order_acquire);
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<SpanRecord> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const Slot& slot = chunks_[i / kChunkSlots][i % kChunkSlots];
      SpanRecord rec;
      rec.name = slot.name;
      rec.note = slot.note;
      rec.start_ns = slot.start_ns;
      rec.end_ns = slot.end_ns.load(std::memory_order_acquire);
      rec.parent = slot.parent;
      rec.tag = slot.tag;
      out.push_back(rec);
    }
    return out;
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    chunks_.clear();
    chunk_count_ = 0;
    size_.store(0, std::memory_order_relaxed);
    open_stack_.clear();
  }

 private:
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  /// Mirror of chunks_.size() readable without the mutex by the owner
  /// thread (only the owner ever grows the list).
  std::size_t chunk_count_ = 0;
  std::atomic<std::uint32_t> size_{0};
  std::vector<std::uint32_t> open_stack_;  ///< owner thread only
  mutable std::mutex mutex_;
  std::string name_;
};

namespace {

// The shared_ptr keeps the buffer alive past thread exit (the Tracer holds
// another reference); the raw pointer is the per-span fast path.
thread_local std::shared_ptr<ThreadTrace> t_trace;
thread_local ThreadTrace* t_trace_raw = nullptr;

/// Sort key making snapshot order independent of registration order:
/// "main" first, then "worker.<n>" numerically, then everything else by
/// name.
std::tuple<int, long, std::string> thread_order_key(const std::string& name) {
  if (name == "main") return {0, 0, name};
  constexpr const char* kWorker = "worker.";
  if (name.rfind(kWorker, 0) == 0) {
    const std::string digits = name.substr(7);
    if (!digits.empty() &&
        digits.find_first_not_of("0123456789") == std::string::npos) {
      return {1, std::stol(digits), name};
    }
  }
  return {2, 0, name};
}

}  // namespace

}  // namespace detail

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

detail::ThreadTrace& Tracer::local() {
  if (detail::t_trace_raw == nullptr) {
    auto trace = std::make_shared<detail::ThreadTrace>();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      trace->set_name("thread." + std::to_string(traces_.size()));
      traces_.push_back(trace);
    }
    detail::t_trace = std::move(trace);
    detail::t_trace_raw = detail::t_trace.get();
  }
  return *detail::t_trace_raw;
}

void Tracer::set_thread_name(std::string name) {
  local().set_name(std::move(name));
}

void set_current_thread_name(std::string name) {
  Tracer::instance().set_thread_name(std::move(name));
}

std::vector<ThreadSnapshot> Tracer::snapshot() const {
  std::vector<std::shared_ptr<detail::ThreadTrace>> traces;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    traces = traces_;
  }
  std::vector<ThreadSnapshot> out;
  for (const auto& trace : traces) {
    const std::vector<SpanRecord> slots = trace->copy_slots();
    ThreadSnapshot snap;
    snap.thread_name = trace->name();
    // Keep only completed spans; remap parent indices and lift spans whose
    // parent is still open onto the nearest closed ancestor.
    std::vector<std::uint32_t> remap(slots.size(), kNoParent);
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (slots[i].end_ns == 0) continue;
      SpanRecord rec = slots[i];
      std::uint32_t parent = rec.parent;
      while (parent != kNoParent && remap[parent] == kNoParent) {
        parent = slots[parent].parent;
      }
      rec.parent = parent == kNoParent ? kNoParent : remap[parent];
      remap[i] = static_cast<std::uint32_t>(snap.spans.size());
      snap.spans.push_back(rec);
    }
    if (!snap.spans.empty() || !snap.thread_name.empty()) {
      out.push_back(std::move(snap));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ThreadSnapshot& a, const ThreadSnapshot& b) {
              return detail::thread_order_key(a.thread_name) <
                     detail::thread_order_key(b.thread_name);
            });
  return out;
}

void Tracer::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& trace : traces_) trace->clear();
}

std::size_t Tracer::span_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& trace : traces_) n += trace->size();
  return n;
}

std::size_t Tracer::open_span_depth() {
  return detail::t_trace_raw == nullptr ? 0
                                        : detail::t_trace_raw->open_depth();
}

void Span::open(const char* name, const char* note) noexcept {
  trace_ = &Tracer::instance().local();
  slot_ = trace_->open(name, note);
}

void Span::close() noexcept {
  if (slot_ != nullptr) {
    trace_->close(slot_);
    slot_ = nullptr;
  }
}

void Span::annotate(const char* note) noexcept {
  if (slot_ != nullptr) slot_->note = note;
}

void Span::tag(std::uint64_t value) noexcept {
  if (slot_ != nullptr) slot_->tag = value;
}

}  // namespace cube::obs
