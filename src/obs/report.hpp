// Exporters over tracer snapshots: a human-readable text report and the
// Chrome trace_event JSON consumed by about://tracing and Perfetto
// (docs/OBSERVABILITY.md).  The third exporter — the CUBE experiment
// form — lives in obs/self_profile.hpp, above the data model.
#pragma once

#include <iosfwd>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace cube::obs {

/// Writes an indented per-thread span tree (visits, inclusive and
/// exclusive wall ms per call path) followed by the metrics table.
void write_text_report(std::ostream& out,
                       const std::vector<ThreadSnapshot>& threads,
                       const MetricsRegistry& registry);
/// Convenience over the process-wide tracer and registry.
void write_text_report(std::ostream& out);

/// Writes Chrome trace_event JSON: one complete ("ph":"X") event per span
/// with microsecond timestamps, plus thread_name metadata events so the
/// viewer labels rows "main", "worker.0", ....  Span notes are emitted
/// under "args".
void write_chrome_trace(std::ostream& out,
                        const std::vector<ThreadSnapshot>& threads);
/// Convenience over the process-wide tracer; throws on stream failure via
/// the caller's stream state (callers writing files should check).
void write_chrome_trace(std::ostream& out);

}  // namespace cube::obs
