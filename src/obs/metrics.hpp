// MetricsRegistry: named counters, gauges, and histograms for the
// library's own execution statistics (docs/OBSERVABILITY.md).
//
// One typed registry replaces the ad-hoc per-subsystem counter structs
// (the old cube::KernelStats and the hand-copied kernel fields of
// QueryStats): an instrument is addressed by a stable dotted name
// ("algebra.kernel.chunks", "io.xml.bytes_read", "pool.queue_wait") plus
// a unit, resolved once, and then updated with relaxed atomics — safe to
// hit from operator chunks and pool workers concurrently.
//
// Two usage patterns coexist:
//  * the process-wide global() registry, fed by the always-on
//    instrumentation (io byte counts, pool queue latency) and consumed by
//    the self-profile exporter;
//  * short-lived local registries for per-run isolation — the query
//    engine records one run's kernel counters into a local registry,
//    copies them into its QueryStats, and absorb()s them into the global
//    one.
//
// This layer sits below cube_common (the thread pool is instrumented), so
// it depends on the standard library only.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace cube::obs {

/// Unit of a registered instrument.  Mirrors the data model's three units
/// (model/metric.hpp) without depending on it — obs sits below the model.
enum class SampleUnit { Seconds, Bytes, Count };

/// Canonical lower-case spelling ("sec", "bytes", "occ"), matching
/// cube::unit_name so exported metrics carry the data model's unit names.
[[nodiscard]] std::string_view sample_unit_name(SampleUnit u) noexcept;

enum class InstrumentKind { Counter, Gauge, Histogram };

/// Monotonic event/quantity count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written level (thread counts, repository sizes), or — once
/// record_max() has been called — a sticky high-watermark (peak inflight,
/// peak RSS).  The mode travels with the gauge: absorb() folds a
/// watermark gauge with max instead of overwriting the level.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  /// Raises the level to `v` if higher and marks this gauge as a
  /// high-watermark (the mark is permanent; reset() zeroes the level but
  /// keeps the mode).
  void record_max(double v) noexcept;
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool high_watermark() const noexcept {
    return watermark_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
  std::atomic<bool> watermark_{false};
};

/// Distribution of observed values: count, sum, min, max, and fixed
/// log-spaced buckets — four sub-buckets per power of two (edges at
/// 2^(k/4)) spanning [2^-30, 2^2), i.e. ~1 ns to 4 s for durations in
/// seconds, clamped at both ends.  The edges are compile-time constants,
/// so every process buckets identically and quantile() is deterministic
/// for a given set of observations.
class Histogram {
 public:
  static constexpr std::size_t kBucketsPerOctave = 4;
  static constexpr std::size_t kOctaves = 32;
  static constexpr std::size_t kBuckets = kBucketsPerOctave * kOctaves;
  /// frexp exponent of the smallest in-range value (2^-30 = 0.5 * 2^-29).
  static constexpr int kMinExp = -29;

  /// Lower edge of bucket `i` (0 for bucket 0, which also absorbs
  /// everything below the range).  bucket_lower_bound(kBuckets) is the
  /// upper edge of the last bucket's nominal range; the last bucket also
  /// absorbs everything above it.
  [[nodiscard]] static double bucket_lower_bound(std::size_t i) noexcept;

  void observe(double v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double min() const noexcept;  ///< 0 when empty
  [[nodiscard]] double max() const noexcept;  ///< 0 when empty
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Quantile estimate from the bucket counts: linear interpolation
  /// within the covering bucket, clamped to [min(), max()].  q in [0, 1];
  /// 0 when empty.  Exact bucket-resolution on a quiescent histogram; a
  /// racing observe() can skew a concurrent estimate by at most its own
  /// observation.
  [[nodiscard]] double quantile(double q) const noexcept;

  /// The accumulating fields (everything except min/max), copyable as a
  /// plain struct so callers can difference two snapshots of the same
  /// histogram into a window (obs/window.hpp).
  struct Cells {
    std::uint64_t count = 0;
    double sum = 0.0;
    std::uint64_t buckets[kBuckets] = {};
  };
  [[nodiscard]] Cells cells() const noexcept;
  /// Adds `c` into this histogram.  min/max are seeded from the occupied
  /// bucket edges when this histogram was empty (the true extremes of a
  /// differenced window are not recoverable from cumulative snapshots).
  void add_cells(const Cells& c) noexcept;

  void merge(const Histogram& other) noexcept;
  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};  ///< valid only when count_ > 0
  std::atomic<double> max_{0.0};
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
};

/// One instrument's state, copied out by snapshot().
struct MetricSample {
  std::string name;
  InstrumentKind kind = InstrumentKind::Counter;
  SampleUnit unit = SampleUnit::Count;
  /// Counter value, gauge level, or histogram sum.
  double value = 0.0;
  /// Histogram observation count (0 for counters and gauges).
  std::uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  /// Histogram quantile estimates (0 for counters and gauges).
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Registry of named instruments.  Registration (the first counter() /
/// gauge() / histogram() call per name) takes a mutex; the returned
/// references stay valid for the registry's lifetime — including across
/// reset(), which zeroes values but never removes instruments — so hot
/// paths resolve once and update lock-free.  Re-registering a name with a
/// different kind or unit throws std::runtime_error (stable dotted names
/// are part of the contract; see docs/OBSERVABILITY.md).
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name,
                   SampleUnit unit = SampleUnit::Count);
  Gauge& gauge(std::string_view name, SampleUnit unit = SampleUnit::Count);
  Histogram& histogram(std::string_view name,
                       SampleUnit unit = SampleUnit::Seconds);

  /// All instruments, sorted by name.
  [[nodiscard]] std::vector<MetricSample> snapshot() const;

  /// One registered instrument, by reference.  The pointers stay valid
  /// for the registry's lifetime (instruments are never removed), so
  /// consumers like RegistryWindow can re-read them lock-free.
  struct InstrumentRef {
    std::string name;
    InstrumentKind kind = InstrumentKind::Counter;
    SampleUnit unit = SampleUnit::Count;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
  };
  /// All instruments as live references, sorted by name.
  [[nodiscard]] std::vector<InstrumentRef> instruments() const;

  /// Adds `other`'s state into this registry: counters and histograms
  /// accumulate, gauges take the other's level if it was ever set.
  void absorb(const MetricsRegistry& other);

  /// Zeroes every instrument; references handed out stay valid.
  void reset();

  [[nodiscard]] std::size_t size() const;

  /// The process-wide registry the built-in instrumentation feeds.
  static MetricsRegistry& global();

 private:
  struct Instrument {
    InstrumentKind kind;
    SampleUnit unit;
    Counter counter;
    Gauge gauge;
    Histogram histogram;
  };

  Instrument& resolve(std::string_view name, InstrumentKind kind,
                      SampleUnit unit);

  mutable std::mutex mutex_;
  /// Ordered map: snapshot order == name order, deterministically.
  std::map<std::string, std::unique_ptr<Instrument>, std::less<>> entries_;
};

/// Writes a plain-text table of every instrument (the metrics half of the
/// --stats report).
void write_metrics_report(std::ostream& out, const MetricsRegistry& registry);

}  // namespace cube::obs
