#include "obs/metrics.hpp"

#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace cube::obs {

namespace {

/// Relaxed atomic add for doubles (atomic<double>::fetch_add is C++20 but
/// not universally lowered; the CAS loop is portable and uncontended here).
void atomic_add(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

/// Sub-bucket edges within one octave: frexp mantissas (in [0.5, 1)) at
/// 2^(k/4) spacing, written out as literals so the edges are identical on
/// every platform — no runtime pow/log whose last bit could differ.
constexpr double kSubEdge1 = 0.5946035575013605;  // 2^0.25 / 2
constexpr double kSubEdge2 = 0.7071067811865476;  // 2^0.50 / 2
constexpr double kSubEdge3 = 0.8408964152537145;  // 2^0.75 / 2

std::size_t bucket_index(double v) noexcept {
  if (!(v > 0.0)) return 0;
  int exp = 0;
  const double m = std::frexp(v, &exp);  // v = m * 2^exp, m in [0.5, 1)
  const std::size_t sub = m < kSubEdge1 ? 0 : m < kSubEdge2 ? 1
                          : m < kSubEdge3 ? 2 : 3;
  const long octave = static_cast<long>(exp) - Histogram::kMinExp;
  if (octave < 0) return 0;
  const long index =
      octave * static_cast<long>(Histogram::kBucketsPerOctave) +
      static_cast<long>(sub);
  if (index >= static_cast<long>(Histogram::kBuckets)) {
    return Histogram::kBuckets - 1;
  }
  return static_cast<std::size_t>(index);
}

}  // namespace

double Histogram::bucket_lower_bound(std::size_t i) noexcept {
  if (i == 0) return 0.0;
  constexpr double kSubLower[kBucketsPerOctave] = {0.5, kSubEdge1, kSubEdge2,
                                                   kSubEdge3};
  // ldexp is exact, so each edge is the literal mantissa scaled by a
  // power of two — bit-identical everywhere.
  return std::ldexp(kSubLower[i % kBucketsPerOctave],
                    kMinExp + static_cast<int>(i / kBucketsPerOctave));
}

std::string_view sample_unit_name(SampleUnit u) noexcept {
  switch (u) {
    case SampleUnit::Seconds:
      return "sec";
    case SampleUnit::Bytes:
      return "bytes";
    case SampleUnit::Count:
      return "occ";
  }
  return "occ";
}

void Gauge::record_max(double v) noexcept {
  watermark_.store(true, std::memory_order_relaxed);
  double cur = value_.load(std::memory_order_relaxed);
  while (v > cur &&
         !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void Histogram::observe(double v) noexcept {
  const std::uint64_t seen = count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  if (seen == 0) {
    // First observation seeds min/max; racing observers fix it up below.
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
  } else {
    atomic_min(min_, v);
    atomic_max(max_, v);
  }
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
}

double Histogram::min() const noexcept {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const noexcept {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::quantile(double q) const noexcept {
  // Work from one pass over the bucket array; the total is the bucket sum
  // (not count_) so a racing observe() that has bumped count_ but not yet
  // its bucket cannot push the target rank past the recorded mass.
  std::uint64_t cells[kBuckets];
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cells[i] = buckets_[i].load(std::memory_order_relaxed);
    total += cells[i];
  }
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (cells[i] == 0) continue;
    const std::uint64_t next = cum + cells[i];
    if (static_cast<double>(next) >= target) {
      const double lo = bucket_lower_bound(i);
      const double hi = bucket_lower_bound(i + 1);
      const double within =
          (target - static_cast<double>(cum)) / static_cast<double>(cells[i]);
      double v = lo + within * (hi - lo);
      // The recorded extremes are exact; the bucket edges are not.  Clamp
      // so a quantile never reports outside the observed range.
      const double observed_min = min();
      const double observed_max = max();
      if (v < observed_min) v = observed_min;
      if (v > observed_max) v = observed_max;
      return v;
    }
    cum = next;
  }
  return max();
}

Histogram::Cells Histogram::cells() const noexcept {
  Cells out;
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kBuckets; ++i) {
    out.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::add_cells(const Cells& c) noexcept {
  if (c.count == 0) return;
  std::size_t first = kBuckets;
  std::size_t last = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (c.buckets[i] == 0) continue;
    if (first == kBuckets) first = i;
    last = i;
    buckets_[i].fetch_add(c.buckets[i], std::memory_order_relaxed);
  }
  const std::uint64_t seen = count_.fetch_add(c.count,
                                              std::memory_order_relaxed);
  atomic_add(sum_, c.sum);
  if (first != kBuckets) {
    const double lo = bucket_lower_bound(first);
    const double hi = bucket_lower_bound(last + 1);
    if (seen == 0) {
      min_.store(lo, std::memory_order_relaxed);
      max_.store(hi, std::memory_order_relaxed);
    } else {
      atomic_min(min_, lo);
      atomic_max(max_, hi);
    }
  }
}

void Histogram::merge(const Histogram& other) noexcept {
  const std::uint64_t n = other.count();
  if (n == 0) return;
  const std::uint64_t seen = count_.fetch_add(n, std::memory_order_relaxed);
  atomic_add(sum_, other.sum());
  if (seen == 0) {
    min_.store(other.min(), std::memory_order_relaxed);
    max_.store(other.max(), std::memory_order_relaxed);
  } else {
    atomic_min(min_, other.min());
    atomic_max(max_, other.max());
  }
  for (std::size_t i = 0; i < kBuckets; ++i) {
    buckets_[i].fetch_add(other.bucket(i), std::memory_order_relaxed);
  }
}

void Histogram::reset() noexcept {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

MetricsRegistry::Instrument& MetricsRegistry::resolve(std::string_view name,
                                                      InstrumentKind kind,
                                                      SampleUnit unit) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(name);
  if (it != entries_.end()) {
    if (it->second->kind != kind || it->second->unit != unit) {
      throw std::runtime_error(
          "obs metric '" + std::string(name) +
          "' re-registered with a different kind or unit");
    }
    return *it->second;
  }
  auto instrument = std::make_unique<Instrument>();
  instrument->kind = kind;
  instrument->unit = unit;
  return *entries_.emplace(std::string(name), std::move(instrument))
              .first->second;
}

Counter& MetricsRegistry::counter(std::string_view name, SampleUnit unit) {
  return resolve(name, InstrumentKind::Counter, unit).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, SampleUnit unit) {
  return resolve(name, InstrumentKind::Gauge, unit).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      SampleUnit unit) {
  return resolve(name, InstrumentKind::Histogram, unit).histogram;
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricSample> out;
  out.reserve(entries_.size());
  for (const auto& [name, instrument] : entries_) {
    MetricSample s;
    s.name = name;
    s.kind = instrument->kind;
    s.unit = instrument->unit;
    switch (instrument->kind) {
      case InstrumentKind::Counter:
        s.value = static_cast<double>(instrument->counter.value());
        break;
      case InstrumentKind::Gauge:
        s.value = instrument->gauge.value();
        break;
      case InstrumentKind::Histogram:
        s.value = instrument->histogram.sum();
        s.count = instrument->histogram.count();
        s.min = instrument->histogram.min();
        s.max = instrument->histogram.max();
        s.p50 = instrument->histogram.quantile(0.50);
        s.p90 = instrument->histogram.quantile(0.90);
        s.p99 = instrument->histogram.quantile(0.99);
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<MetricsRegistry::InstrumentRef> MetricsRegistry::instruments()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<InstrumentRef> out;
  out.reserve(entries_.size());
  for (const auto& [name, instrument] : entries_) {
    out.push_back(InstrumentRef{name, instrument->kind, instrument->unit,
                                &instrument->counter, &instrument->gauge,
                                &instrument->histogram});
  }
  return out;
}

void MetricsRegistry::absorb(const MetricsRegistry& other) {
  // Snapshot the source outside our own lock (distinct registries; the
  // source keeps serving concurrent updates).
  std::vector<std::pair<std::string, const Instrument*>> sources;
  {
    std::lock_guard<std::mutex> lock(other.mutex_);
    sources.reserve(other.entries_.size());
    for (const auto& [name, instrument] : other.entries_) {
      sources.emplace_back(name, instrument.get());
    }
  }
  for (const auto& [name, src] : sources) {
    Instrument& dst = resolve(name, src->kind, src->unit);
    switch (src->kind) {
      case InstrumentKind::Counter:
        dst.counter.add(src->counter.value());
        break;
      case InstrumentKind::Gauge:
        // A high-watermark gauge folds with max — absorbing several
        // per-run registries keeps the peak, not the last run's level.
        if (src->gauge.high_watermark()) {
          dst.gauge.record_max(src->gauge.value());
        } else {
          dst.gauge.set(src->gauge.value());
        }
        break;
      case InstrumentKind::Histogram:
        dst.histogram.merge(src->histogram);
        break;
    }
  }
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, instrument] : entries_) {
    (void)name;
    instrument->counter.reset();
    instrument->gauge.reset();
    instrument->histogram.reset();
  }
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never dies:
  // instrumentation sites cache references resolved during static-init-
  // order-unknown moments and may fire from detached threads at exit.
  return *registry;
}

void write_metrics_report(std::ostream& out,
                          const MetricsRegistry& registry) {
  const std::vector<MetricSample> samples = registry.snapshot();
  if (samples.empty()) {
    out << "  (no metrics recorded)\n";
    return;
  }
  std::size_t width = 0;
  for (const MetricSample& s : samples) {
    width = std::max(width, s.name.size());
  }
  for (const MetricSample& s : samples) {
    std::ostringstream value;
    switch (s.kind) {
      case InstrumentKind::Counter:
      case InstrumentKind::Gauge:
        if (s.value == std::floor(s.value) && std::abs(s.value) < 1e15) {
          value << static_cast<long long>(s.value);
        } else {
          value << std::setprecision(6) << s.value;
        }
        value << ' ' << sample_unit_name(s.unit);
        break;
      case InstrumentKind::Histogram:
        value << s.count << " samples, sum " << std::setprecision(6)
              << s.value << ' ' << sample_unit_name(s.unit) << " (mean "
              << (s.count == 0 ? 0.0
                               : s.value / static_cast<double>(s.count))
              << ", min " << s.min << ", max " << s.max << ", p50 " << s.p50
              << ", p90 " << s.p90 << ", p99 " << s.p99 << ')';
        break;
    }
    out << "  " << s.name << std::string(width - s.name.size() + 2, ' ')
        << value.str() << '\n';
  }
}

}  // namespace cube::obs
