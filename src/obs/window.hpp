// RegistryWindow: periodic deltas over a live MetricsRegistry.
//
// The self-profile exporter (obs/self_profile.hpp) maps a registry onto a
// CUBE experiment, but the process-wide registry only ever accumulates —
// exporting it twice gives two prefixes of the same history, not two
// comparable windows.  A RegistryWindow remembers a baseline of every
// accumulating field (counter values, histogram cells) and, on each
// advance(), returns JUST the activity since the previous advance() as a
// fresh registry: counters hold the delta, histograms hold the window's
// observations (bucket-exact), gauges carry their current level (or the
// running high-watermark for record_max gauges).
//
// The source registry is never reset — other consumers (--stats reports,
// the Stats wire endpoint) keep seeing cumulative totals — so windowing
// is safe to run inside a live server.  Windows over the same instrument
// set build digest-equal experiment metadata, which is what lets the
// algebra `difference` any two windows bit-deterministically.
//
// advance() is not itself thread-safe; callers serialize it (the server's
// housekeeping thread is the only caller there).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "obs/metrics.hpp"

namespace cube::obs {

class RegistryWindow {
 public:
  /// Captures the baseline: the first advance() covers activity from
  /// construction.
  explicit RegistryWindow(const MetricsRegistry& source);

  /// Returns the delta since the previous advance() (or construction) as
  /// a fresh registry and moves the baseline forward.  Instruments
  /// registered since the last call are covered from zero.
  [[nodiscard]] std::unique_ptr<MetricsRegistry> advance();

 private:
  struct Baseline {
    std::uint64_t counter = 0;
    Histogram::Cells cells;
  };

  void capture_baseline();

  const MetricsRegistry& source_;
  std::map<std::string, Baseline> baseline_;
};

}  // namespace cube::obs
