#include "obs/window.hpp"

namespace cube::obs {

namespace {

/// Per-field saturating difference: counters and buckets are monotone, so
/// a negative delta can only mean the instrument was reset between
/// advances — report the post-reset value rather than wrapping.
std::uint64_t delta_u64(std::uint64_t cur, std::uint64_t prev) noexcept {
  return cur >= prev ? cur - prev : cur;
}

double delta_sum(double cur, double prev) noexcept {
  return cur >= prev ? cur - prev : cur;
}

}  // namespace

RegistryWindow::RegistryWindow(const MetricsRegistry& source)
    : source_(source) {
  capture_baseline();
}

void RegistryWindow::capture_baseline() {
  for (const MetricsRegistry::InstrumentRef& ref : source_.instruments()) {
    Baseline& base = baseline_[ref.name];
    switch (ref.kind) {
      case InstrumentKind::Counter:
        base.counter = ref.counter->value();
        break;
      case InstrumentKind::Gauge:
        break;  // levels are not accumulated; nothing to difference
      case InstrumentKind::Histogram:
        base.cells = ref.histogram->cells();
        break;
    }
  }
}

std::unique_ptr<MetricsRegistry> RegistryWindow::advance() {
  auto out = std::make_unique<MetricsRegistry>();
  for (const MetricsRegistry::InstrumentRef& ref : source_.instruments()) {
    Baseline& base = baseline_[ref.name];
    switch (ref.kind) {
      case InstrumentKind::Counter: {
        const std::uint64_t cur = ref.counter->value();
        out->counter(ref.name, ref.unit).add(delta_u64(cur, base.counter));
        base.counter = cur;
        break;
      }
      case InstrumentKind::Gauge: {
        Gauge& g = out->gauge(ref.name, ref.unit);
        if (ref.gauge->high_watermark()) {
          g.record_max(ref.gauge->value());
        } else {
          g.set(ref.gauge->value());
        }
        break;
      }
      case InstrumentKind::Histogram: {
        const Histogram::Cells cur = ref.histogram->cells();
        Histogram::Cells delta;
        delta.count = delta_u64(cur.count, base.cells.count);
        delta.sum = delta_sum(cur.sum, base.cells.sum);
        for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
          delta.buckets[i] = delta_u64(cur.buckets[i], base.cells.buckets[i]);
        }
        out->histogram(ref.name, ref.unit).add_cells(delta);
        base.cells = cur;
        break;
      }
    }
  }
  return out;
}

}  // namespace cube::obs
