#include "obs/json_export.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace cube::obs {

void write_json_string(std::ostream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\r':
        out << "\\r";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void write_json_number(std::ostream& out, double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[32];
  const std::to_chars_result r = std::to_chars(buf, buf + sizeof(buf), v);
  out.write(buf, r.ptr - buf);
}

void write_json_number(std::ostream& out, std::uint64_t v) {
  char buf[24];
  const std::to_chars_result r = std::to_chars(buf, buf + sizeof(buf), v);
  out.write(buf, r.ptr - buf);
}

namespace {

void write_field(std::ostream& out, const char* key, double v) {
  out << ',';
  write_json_string(out, key);
  out << ':';
  write_json_number(out, v);
}

}  // namespace

void write_metrics_json(std::ostream& out,
                        const std::vector<MetricSample>& samples) {
  out << '{';
  bool first = true;
  for (const MetricSample& s : samples) {
    if (!first) out << ',';
    first = false;
    write_json_string(out, s.name);
    out << ":{\"kind\":";
    switch (s.kind) {
      case InstrumentKind::Counter:
        out << "\"counter\"";
        break;
      case InstrumentKind::Gauge:
        out << "\"gauge\"";
        break;
      case InstrumentKind::Histogram:
        out << "\"histogram\"";
        break;
    }
    out << ",\"unit\":";
    write_json_string(out, sample_unit_name(s.unit));
    if (s.kind == InstrumentKind::Histogram) {
      out << ",\"count\":";
      write_json_number(out, s.count);
      write_field(out, "sum", s.value);
      write_field(out, "mean",
                  s.count == 0 ? 0.0
                               : s.value / static_cast<double>(s.count));
      write_field(out, "min", s.min);
      write_field(out, "max", s.max);
      write_field(out, "p50", s.p50);
      write_field(out, "p90", s.p90);
      write_field(out, "p99", s.p99);
    } else {
      write_field(out, "value", s.value);
    }
    out << '}';
  }
  out << '}';
}

std::string metrics_json(const std::vector<MetricSample>& samples) {
  std::ostringstream out;
  write_metrics_json(out, samples);
  return out.str();
}

}  // namespace cube::obs
