#include "obs/self_profile.hpp"

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "io/binary_format.hpp"
#include "io/cube_format.hpp"
#include "model/metadata.hpp"

namespace cube::obs {

namespace {

Unit to_model_unit(SampleUnit u) {
  switch (u) {
    case SampleUnit::Seconds:
      return Unit::Seconds;
    case SampleUnit::Bytes:
      return Unit::Bytes;
    case SampleUnit::Count:
      return Unit::Occurrences;
  }
  return Unit::Occurrences;
}

/// A call path as the sequence of span names from a thread root down.
using Path = std::vector<std::string>;

}  // namespace

Experiment export_self_profile(const std::vector<ThreadSnapshot>& threads,
                               const MetricsRegistry& registry,
                               const SelfProfileOptions& options) {
  // --- collect the call paths and span names ------------------------------
  // path_of[t][i] is span i's full path on thread t; paths double as the
  // deterministic creation order for regions and cnodes (sorted), so two
  // runs recording the same span structure build digest-equal metadata no
  // matter how threads interleaved.
  std::vector<std::vector<Path>> path_of(threads.size());
  std::vector<std::string> span_names;
  std::vector<Path> all_paths;
  for (std::size_t t = 0; t < threads.size(); ++t) {
    const ThreadSnapshot& snap = threads[t];
    path_of[t].resize(snap.spans.size());
    for (std::size_t i = 0; i < snap.spans.size(); ++i) {
      const SpanRecord& rec = snap.spans[i];
      Path path = rec.parent == kNoParent ? Path{} : path_of[t][rec.parent];
      path.emplace_back(rec.name);
      span_names.emplace_back(rec.name);
      all_paths.push_back(path);
      path_of[t][i] = std::move(path);
    }
  }
  std::sort(span_names.begin(), span_names.end());
  span_names.erase(std::unique(span_names.begin(), span_names.end()),
                   span_names.end());
  std::sort(all_paths.begin(), all_paths.end());
  all_paths.erase(std::unique(all_paths.begin(), all_paths.end()),
                  all_paths.end());

  const std::vector<MetricSample> samples = registry.snapshot();

  // --- metadata -----------------------------------------------------------
  auto md = std::make_unique<Metadata>();

  // Metric dimension: the span-derived roots first, then one root per
  // registry instrument (flat — units differ across instruments, and the
  // data model requires one unit per tree).
  const Metric& time_metric = md->add_metric(
      nullptr, "time", "Time", Unit::Seconds,
      "exclusive wall time per call path and thread, from tracer spans");
  const Metric& visits_metric =
      md->add_metric(nullptr, "visits", "Visits", Unit::Occurrences,
                     "span entries per call path and thread");
  std::vector<const Metric*> sample_metric(samples.size(), nullptr);
  std::vector<const Metric*> sample_count_metric(samples.size(), nullptr);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const MetricSample& s = samples[i];
    sample_metric[i] = &md->add_metric(nullptr, s.name, s.name,
                                       to_model_unit(s.unit),
                                       "obs registry instrument");
    if (s.kind == InstrumentKind::Histogram) {
      sample_count_metric[i] =
          &md->add_metric(nullptr, s.name + ".count", s.name + ".count",
                          Unit::Occurrences, "histogram observation count");
    }
  }

  // Program dimension: one region per span name under a synthetic "(run)"
  // root; one cnode per distinct path.  Sorted path order guarantees a
  // parent path (a strict prefix) is created before its extensions.
  const Region& run_region = md->add_region("(run)", "obs", -1, -1,
                                            "whole traced tool run");
  const Cnode& run_root = md->add_cnode_for_region(nullptr, run_region);
  std::map<std::string, const Region*> region_of;
  for (const std::string& name : span_names) {
    region_of.emplace(name,
                      &md->add_region(name, "obs", -1, -1, "tracer span"));
  }
  std::map<Path, const Cnode*> cnode_of;
  for (const Path& path : all_paths) {
    const Cnode* parent = &run_root;
    if (path.size() > 1) {
      parent = cnode_of.at(Path(path.begin(), path.end() - 1));
    }
    cnode_of.emplace(
        path, &md->add_cnode_for_region(parent, *region_of.at(path.back())));
  }

  // System dimension: one process hosting one thread per traced thread, in
  // snapshot order (the tracer already sorted "main" first, then workers).
  Machine& machine = md->add_machine("host");
  SysNode& node = md->add_node(machine, "node0");
  Process& process = md->add_process(node, "self", 0);
  std::vector<const Thread*> model_threads;
  if (threads.empty()) {
    model_threads.push_back(&md->add_thread(process, "main", 0));
  } else {
    for (std::size_t t = 0; t < threads.size(); ++t) {
      model_threads.push_back(&md->add_thread(
          process, threads[t].thread_name, static_cast<long>(t)));
    }
  }

  Experiment profile(freeze_metadata(std::move(md)), options.storage);

  // --- severity -----------------------------------------------------------
  // Exclusive time: each span's duration minus its direct children's.
  for (std::size_t t = 0; t < threads.size(); ++t) {
    const ThreadSnapshot& snap = threads[t];
    std::vector<std::int64_t> child_ns(snap.spans.size(), 0);
    for (std::size_t i = 0; i < snap.spans.size(); ++i) {
      const SpanRecord& rec = snap.spans[i];
      if (rec.parent != kNoParent) {
        child_ns[rec.parent] += rec.end_ns - rec.start_ns;
      }
    }
    for (std::size_t i = 0; i < snap.spans.size(); ++i) {
      const SpanRecord& rec = snap.spans[i];
      const Cnode& cnode = *cnode_of.at(path_of[t][i]);
      const std::int64_t excl =
          std::max<std::int64_t>(0, rec.end_ns - rec.start_ns - child_ns[i]);
      profile.add(time_metric, cnode, *model_threads[t],
                  static_cast<Severity>(excl) / 1e9);
      profile.add(visits_metric, cnode, *model_threads[t], 1.0);
    }
  }
  // Registry instruments are process-global: attribute them to the "(run)"
  // root on the first thread.
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const MetricSample& s = samples[i];
    profile.set(*sample_metric[i], run_root, *model_threads[0], s.value);
    if (sample_count_metric[i] != nullptr) {
      profile.set(*sample_count_metric[i], run_root, *model_threads[0],
                  static_cast<Severity>(s.count));
    }
  }

  std::size_t total_spans = 0;
  for (const ThreadSnapshot& snap : threads) total_spans += snap.spans.size();
  profile.set_name(options.name);
  profile.set_attribute("obs::threads", std::to_string(threads.size()));
  profile.set_attribute("obs::spans", std::to_string(total_spans));
  return profile;
}

Experiment export_self_profile(const SelfProfileOptions& options) {
  return export_self_profile(Tracer::instance().snapshot(),
                             MetricsRegistry::global(), options);
}

void write_self_profile_file(const Experiment& profile,
                             const std::string& path) {
  const bool binary =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".cubx") == 0;
  if (binary) {
    write_cube_binary_file(profile, path);
  } else {
    write_cube_xml_file(profile, path);
  }
}

}  // namespace cube::obs
