// Deterministic JSON rendering of metric snapshots (docs/OBSERVABILITY.md).
//
// The server's Stats/Health wire endpoints promise BYTE-deterministic
// output for a given registry state, so scrapes can be diffed and golden
// tests can assert exact documents.  That rules out locale-dependent
// iostream formatting: numbers go through std::to_chars (shortest
// round-trip form, identical on every run), strings through one escaping
// routine, and object keys come out in the registry's sorted snapshot
// order.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace cube::obs {

/// Writes `s` as a JSON string literal, quotes included: `"`, `\`, and
/// control characters are escaped (\uXXXX for the controls without a
/// short form).
void write_json_string(std::ostream& out, std::string_view s);

/// Writes `v` in shortest round-trip form via std::to_chars.  Non-finite
/// values (which JSON cannot carry) are written as 0.
void write_json_number(std::ostream& out, double v);

/// Writes a whole-valued number as an integer literal.
void write_json_number(std::ostream& out, std::uint64_t v);

/// Renders `samples` (in their given order — snapshot() order is sorted
/// by name) as one JSON object: each instrument name maps to an object
/// with "kind", "unit", and the kind's fields — counters and gauges carry
/// "value"; histograms carry "count", "sum", "mean", "min", "max", "p50",
/// "p90", "p99".
void write_metrics_json(std::ostream& out,
                        const std::vector<MetricSample>& samples);

/// write_metrics_json into a string.
[[nodiscard]] std::string metrics_json(
    const std::vector<MetricSample>& samples);

}  // namespace cube::obs
