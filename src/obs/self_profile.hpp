// The headline exporter: the tool's own profile as a CUBE experiment.
//
// The paper's closure property says every operator maps valid experiments
// to valid experiments, so one pipeline serves original and derived data
// alike.  This module closes the loop on the tool itself: the tracer's
// span forest becomes the call-tree dimension (one region per span name,
// one cnode per distinct call path under a synthetic "(run)" root), the
// metric names become the metric-tree dimension ("time" and "visits" from
// the spans, one metric per registry instrument), and the traced threads
// become the system dimension ("main", "worker.0", ...).  The result is a
// frozen, digest-valid Experiment: cube_lint accepts it, every codec
// round-trips it, and cube_diff/mean of two tool runs flow through the
// same operators the profile measured.
#pragma once

#include <string>
#include <vector>

#include "model/experiment.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace cube::obs {

struct SelfProfileOptions {
  /// Experiment display name (attribute "cube::name").
  std::string name = "self-profile";
  /// Storage of the produced severity function.  Profiles are small and
  /// mostly filled along the time/visits rows; dense is the default.
  StorageKind storage = StorageKind::Dense;
};

/// Maps a tracer snapshot plus a metrics registry onto an Experiment.
///
/// Span wall time is recorded EXCLUSIVE per (call path, thread) in seconds
/// under the "time" metric — children's time is subtracted from the
/// parent's, matching the library-wide severity convention — and span
/// entries count under "visits".  Registry instruments become one root
/// metric each (histograms additionally get "<name>.count"), attributed
/// to the "(run)" root of the first thread.  Entity creation order is
/// deterministic: regions and call paths sorted by name, threads in
/// snapshot order ("main", then workers numerically).
[[nodiscard]] Experiment export_self_profile(
    const std::vector<ThreadSnapshot>& threads,
    const MetricsRegistry& registry, const SelfProfileOptions& options = {});

/// Convenience over the process-wide tracer and registry.
[[nodiscard]] Experiment export_self_profile(
    const SelfProfileOptions& options = {});

/// Writes `profile` to `path`, choosing the codec by extension: ".cubx"
/// writes the compact binary format, anything else CUBE XML.  Throws
/// IoError on failure.
void write_self_profile_file(const Experiment& profile,
                             const std::string& path);

}  // namespace cube::obs
