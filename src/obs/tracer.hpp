// Self-profiling tracer: RAII wall-time spans recorded into per-thread
// buffers (docs/OBSERVABILITY.md).
//
// The instrumented hot paths of this library (operators, io codecs, query
// engine, thread pool) open spans through OBS_SPAN("dotted.name").  With
// tracing disabled — the default — a span site costs one relaxed atomic
// load and a branch; nothing is allocated and no clock is read.  Enabled,
// each span appends one record to a buffer owned by its thread: no locks
// and no cross-thread traffic on the hot path (a mutex is taken only when
// a buffer grows by a chunk, every kChunkSlots spans).
//
// Records carry (name, start, end, parent), so each thread's records form
// a call forest: parents are recorded before their children and nesting is
// tracked with a per-thread stack of open spans.  RAII guarantees the
// stack unwinds balanced through exceptions — a span opened before a
// throwing operator closes in its destructor like any other local.
//
// Buffers are owned by the Tracer (shared with the thread-local handle),
// so spans recorded by a pool worker survive the pool's destruction and
// are still exported afterwards.  snapshot() and reset() expect a
// quiescent tracer: disable tracing and finish in-flight work first.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cube::obs {

/// Index marking "no parent span" (a per-thread root).
inline constexpr std::uint32_t kNoParent = 0xffffffffu;

namespace detail {

/// Global enabled flag, inline so the Span fast path is a single relaxed
/// load without a function-local-static guard check.
inline std::atomic<bool> g_tracing_enabled{false};

/// One recorded span.  `end_ns` doubles as the publication flag: it is
/// stored with release order when the span closes, and a snapshot reading
/// it non-zero with acquire order sees every other field.
struct Slot {
  const char* name = nullptr;  ///< static string from the span site
  const char* note = nullptr;  ///< optional static annotation
  std::int64_t start_ns = 0;
  std::atomic<std::int64_t> end_ns{0};  ///< 0 while the span is open
  std::uint32_t parent = kNoParent;     ///< slot index within this thread
  std::uint64_t tag = 0;  ///< numeric annotation (request id); 0 = none
};

class ThreadTrace;

}  // namespace detail

/// A completed span as reported by Tracer::snapshot().  `parent` indexes
/// the owning ThreadSnapshot's span vector (kNoParent for a root).
struct SpanRecord {
  const char* name = nullptr;
  const char* note = nullptr;
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
  std::uint32_t parent = kNoParent;
  std::uint64_t tag = 0;  ///< numeric annotation (request id); 0 = none
};

/// All completed spans of one thread, in record (= open) order: a parent
/// always precedes its children.
struct ThreadSnapshot {
  std::string thread_name;
  std::vector<SpanRecord> spans;
};

/// Process-wide span collector.  One instance exists (instance()); the
/// free helpers below cover the common calls.
class Tracer {
 public:
  static Tracer& instance();

  void enable() noexcept {
    detail::g_tracing_enabled.store(true, std::memory_order_relaxed);
  }
  void disable() noexcept {
    detail::g_tracing_enabled.store(false, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return detail::g_tracing_enabled.load(std::memory_order_relaxed);
  }

  /// Names the calling thread's buffer ("main", "worker.3", ...).  Span
  /// attribution uses these names, so give identical work identical names
  /// across runs to make trace diffs line up (the thread pool does).
  /// Threads that never call this are named "thread.<k>" in registration
  /// order.
  void set_thread_name(std::string name);

  /// Copies out every thread's spans.  Threads are ordered "main" first,
  /// then "worker.<n>" numerically, then the rest by name — deterministic
  /// for identically-named threads regardless of registration order.
  /// Open spans are skipped; a closed span under a still-open parent is
  /// reparented to its nearest closed ancestor.  Intended to run on a
  /// quiescent tracer (tracing disabled or all spans closed).
  [[nodiscard]] std::vector<ThreadSnapshot> snapshot() const;

  /// Drops all recorded spans (buffers stay registered, names survive).
  /// Must not run concurrently with open spans: a live Span holds a
  /// pointer into its buffer.
  void reset();

  /// Total spans recorded since the last reset (open + closed).
  [[nodiscard]] std::size_t span_count() const;

  /// Depth of the calling thread's open-span stack — 0 when every RAII
  /// span unwound.  Exposed for the exception-unwind regression tests.
  [[nodiscard]] static std::size_t open_span_depth();

  /// The calling thread's buffer, registered on first use.  Internal, used
  /// by Span; public only because the macro-expanded call sites need it.
  detail::ThreadTrace& local();

 private:
  Tracer() = default;

  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<detail::ThreadTrace>> traces_;
};

/// Enables/disables tracing on the process-wide tracer.
inline void enable_tracing() { Tracer::instance().enable(); }
inline void disable_tracing() { Tracer::instance().disable(); }
[[nodiscard]] inline bool tracing_enabled() noexcept {
  return detail::g_tracing_enabled.load(std::memory_order_relaxed);
}
/// Names the calling thread for span attribution.
void set_current_thread_name(std::string name);

/// RAII span.  Constructing with tracing disabled is a no-op (one relaxed
/// load); otherwise the span records [construction, destruction) wall time
/// into the calling thread's buffer.  `name` and `note` must be static
/// strings (string literals at the instrumentation sites).
class Span {
 public:
  explicit Span(const char* name) noexcept {
    if (detail::g_tracing_enabled.load(std::memory_order_relaxed)) {
      open(name, nullptr);
    }
  }
  Span(const char* name, const char* note) noexcept {
    if (detail::g_tracing_enabled.load(std::memory_order_relaxed)) {
      open(name, note);
    }
  }
  ~Span() { close(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches/replaces the annotation after construction (e.g. once the
  /// cache outcome of the spanned work is known).  No-op when the span
  /// was opened with tracing disabled.
  void annotate(const char* note) noexcept;

  /// Attaches a numeric annotation (a client request id, a sequence
  /// number).  Notes must be static strings, so per-request data travels
  /// as a number; the Chrome exporter renders it as the span's "tag" arg.
  /// No-op when the span was opened with tracing disabled.
  void tag(std::uint64_t value) noexcept;

  /// True if this span is recording (tracing was enabled at construction).
  [[nodiscard]] bool active() const noexcept { return slot_ != nullptr; }

  /// Closes the span before the end of its scope (for phases that end
  /// mid-function).  Idempotent; the destructor then does nothing.  Only
  /// valid while no span opened AFTER this one is still open (RAII nesting
  /// — inner spans close first).
  void finish() noexcept { close(); }

 private:
  void open(const char* name, const char* note) noexcept;
  void close() noexcept;

  detail::Slot* slot_ = nullptr;
  detail::ThreadTrace* trace_ = nullptr;
};

#define CUBE_OBS_CONCAT_INNER(a, b) a##b
#define CUBE_OBS_CONCAT(a, b) CUBE_OBS_CONCAT_INNER(a, b)
/// Opens an RAII span for the rest of the enclosing scope.
#define OBS_SPAN(...) \
  ::cube::obs::Span CUBE_OBS_CONCAT(obs_span_, __LINE__) { __VA_ARGS__ }

}  // namespace cube::obs
