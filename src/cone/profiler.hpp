// CONE-style call-graph profiling.
//
// CONE is "a call-graph profiler for MPI applications ... which maps
// hardware-counter data onto the full call graph including line numbers"
// using PAPI event sets.  Our CONE consumes the call-path profile a
// simulated run accumulates, synthesizes the selected event set's counter
// values from the recorded workloads (with per-run measurement jitter),
// and emits a CUBE experiment: a wall-clock metric tree plus one counter
// metric tree per event specialization hierarchy in the set.
//
// Because the hardware model rejects conflicting event combinations
// (counters/eventset.hpp), obtaining e.g. FP_INS and L1_DCM takes two CONE
// runs — which the CUBE merge operator then integrates (paper §5.2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "counters/eventset.hpp"
#include "model/experiment.hpp"
#include "sim/engine.hpp"

namespace cube::cone {

/// Profiling options for one CONE measurement run.
struct ConeOptions {
  /// Events measured in this run; must satisfy the hardware restrictions.
  counters::EventSet event_set = counters::event_set_fp();
  /// Measurement-jitter stream; vary per repetition, keep across tools.
  std::uint64_t run_seed = 0;
  double jitter_sigma = 0.01;
  std::string experiment_name = "cone";
  StorageKind storage = StorageKind::Dense;
  /// Include the wall-clock time tree (on by default).
  bool include_time = true;
  /// Optional per-rank Cartesian coordinates (topology extension).
  std::vector<std::vector<long>> topology;
};

/// Unique names of CONE's non-counter metrics.
inline constexpr const char* kConeTime = "cone_time";
inline constexpr const char* kConeVisits = "cone_visits";

/// Converts a run's call-path profile into a CUBE experiment.
[[nodiscard]] Experiment profile_run(const sim::RunResult& run,
                                     const ConeOptions& options = {});

/// Profiles one run repeatedly, once per jitter seed, as a repetition
/// series for mean/stddev.  All experiments share ONE frozen metadata
/// instance (same structure, different measurement noise), so operators
/// take their shared-metadata fast path and a repository stores the
/// series' metadata blob exactly once.  Experiments are named
/// `<experiment_name>-r<k>` and carry `cone::series` / `cone::run_seed`
/// attributes for attribute selectors.
[[nodiscard]] std::vector<Experiment> profile_series(
    const sim::RunResult& run, const std::vector<std::uint64_t>& run_seeds,
    const ConeOptions& options = {});

}  // namespace cube::cone
