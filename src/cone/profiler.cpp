#include "cone/profiler.hpp"

#include <map>

#include "common/error.hpp"
#include "model/system_factory.hpp"

namespace cube::cone {

namespace {

using counters::Event;
using counters::event_info;

}  // namespace

Experiment profile_run(const sim::RunResult& run, const ConeOptions& options) {
  const int num_ranks = run.cluster.num_ranks();
  const sim::CallProfile& profile = run.profile;

  auto md = std::make_unique<Metadata>();

  // --- metric forest --------------------------------------------------------
  const Metric* m_time = nullptr;
  const Metric* m_visits = nullptr;
  if (options.include_time) {
    m_time = &md->add_metric(nullptr, kConeTime, "Wall-clock time",
                             Unit::Seconds,
                             "Exclusive wall-clock time per call path");
    m_visits = &md->add_metric(nullptr, kConeVisits, "Visits",
                               Unit::Occurrences,
                               "Number of call-path visits");
  }
  // Counter metrics mirror the event specialization hierarchy restricted to
  // the measured set: an event whose parent is also measured becomes a
  // child metric; otherwise it forms its own tree root.
  std::map<Event, const Metric*> counter_metric;
  // Events in an EventSet are added in (parent before child) order by the
  // predefined sets; handle arbitrary order by iterating until settled.
  std::vector<Event> pending = options.event_set.events();
  while (!pending.empty()) {
    bool progressed = false;
    std::vector<Event> still_pending;
    for (const Event e : pending) {
      const counters::EventInfo& info = event_info(e);
      const Metric* parent = nullptr;
      if (info.has_parent && options.event_set.contains(info.parent)) {
        const auto it = counter_metric.find(info.parent);
        if (it == counter_metric.end()) {
          still_pending.push_back(e);
          continue;
        }
        parent = it->second;
      }
      counter_metric[e] = &md->add_metric(
          parent, std::string(info.name), std::string(info.name),
          Unit::Occurrences, std::string(info.description));
      progressed = true;
    }
    if (!progressed) {
      throw OperationError("cyclic event hierarchy in event set");
    }
    pending = std::move(still_pending);
  }

  // --- program dimension ------------------------------------------------------
  std::vector<const Region*> regions;
  std::vector<const CallSite*> callsites;
  for (const sim::RegionInfo& r : run.regions.all()) {
    const Region& region =
        md->add_region(r.name, r.file, r.begin_line, r.end_line);
    regions.push_back(&region);
    callsites.push_back(&md->add_callsite(region, r.file, r.begin_line));
  }
  std::vector<const Cnode*> cnodes;
  cnodes.reserve(profile.nodes().size());
  for (const sim::ProfileNode& n : profile.nodes()) {
    const Cnode* parent = n.parent == kNoIndex ? nullptr : cnodes[n.parent];
    cnodes.push_back(&md->add_cnode(parent, *callsites[n.region]));
  }

  // --- system dimension ----------------------------------------------------------
  const std::vector<const Thread*> threads = build_regular_system(
      *md, run.cluster.machine_name, run.cluster.num_nodes,
      run.cluster.procs_per_node, options.topology);

  md->validate();
  Experiment experiment(std::move(md), options.storage);
  experiment.set_name(options.experiment_name);
  experiment.set_attribute("cube::tool", "CONE (simulated)");
  {
    std::string events;
    for (const Event e : options.event_set.events()) {
      if (!events.empty()) events += ' ';
      events += event_info(e).name;
    }
    experiment.set_attribute("cone::event_set", events);
  }

  const counters::JitteredCounterModel model(counters::CounterModel{},
                                             options.run_seed,
                                             options.jitter_sigma);

  for (std::size_t node = 0; node < profile.nodes().size(); ++node) {
    for (int rank = 0; rank < num_ranks; ++rank) {
      const counters::Workload& w = profile.work(node, rank);
      if (m_time != nullptr) {
        const double t = profile.time(node, rank);
        if (t != 0.0) {
          experiment.set(*m_time, *cnodes[node],
                         *threads[static_cast<std::size_t>(rank)], t);
        }
        const double visits =
            static_cast<double>(profile.visits(node, rank));
        if (visits != 0.0) {
          experiment.set(*m_visits, *cnodes[node],
                         *threads[static_cast<std::size_t>(rank)], visits);
        }
      }
      // Severities are exclusive along the metric tree: a parent event's
      // stored value is its count minus the measured child events' counts
      // (e.g. L1 accesses minus L1 misses = L1 hits — the automatic
      // exclusive-metric computation the paper motivates the tree with).
      for (const auto& [event, metric] : counter_metric) {
        double v = model.value(event, w);
        for (const auto& [other, other_metric] : counter_metric) {
          const counters::EventInfo& info = event_info(other);
          if (info.has_parent && info.parent == event) {
            v -= model.value(other, w);
          }
        }
        if (v != 0.0) {
          experiment.set(*metric, *cnodes[node],
                         *threads[static_cast<std::size_t>(rank)], v);
        }
      }
    }
  }
  return experiment;
}

}  // namespace cube::cone
