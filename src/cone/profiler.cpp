#include "cone/profiler.hpp"

#include <map>

#include "common/error.hpp"
#include "model/system_factory.hpp"

namespace cube::cone {

namespace {

using counters::Event;
using counters::event_info;

/// Builds the metric/program/system forests one measurement of `run`
/// describes.  The structure depends only on the run and the options — not
/// on the jitter seed — so a repetition series shares one instance.
std::unique_ptr<Metadata> build_metadata(const sim::RunResult& run,
                                         const ConeOptions& options) {
  const sim::CallProfile& profile = run.profile;
  auto md = std::make_unique<Metadata>();

  // --- metric forest --------------------------------------------------------
  if (options.include_time) {
    md->add_metric(nullptr, kConeTime, "Wall-clock time", Unit::Seconds,
                   "Exclusive wall-clock time per call path");
    md->add_metric(nullptr, kConeVisits, "Visits", Unit::Occurrences,
                   "Number of call-path visits");
  }
  // Counter metrics mirror the event specialization hierarchy restricted to
  // the measured set: an event whose parent is also measured becomes a
  // child metric; otherwise it forms its own tree root.
  std::map<Event, const Metric*> counter_metric;
  // Events in an EventSet are added in (parent before child) order by the
  // predefined sets; handle arbitrary order by iterating until settled.
  std::vector<Event> pending = options.event_set.events();
  while (!pending.empty()) {
    bool progressed = false;
    std::vector<Event> still_pending;
    for (const Event e : pending) {
      const counters::EventInfo& info = event_info(e);
      const Metric* parent = nullptr;
      if (info.has_parent && options.event_set.contains(info.parent)) {
        const auto it = counter_metric.find(info.parent);
        if (it == counter_metric.end()) {
          still_pending.push_back(e);
          continue;
        }
        parent = it->second;
      }
      counter_metric[e] = &md->add_metric(
          parent, std::string(info.name), std::string(info.name),
          Unit::Occurrences, std::string(info.description));
      progressed = true;
    }
    if (!progressed) {
      throw OperationError("cyclic event hierarchy in event set");
    }
    pending = std::move(still_pending);
  }

  // --- program dimension ----------------------------------------------------
  std::vector<const CallSite*> callsites;
  for (const sim::RegionInfo& r : run.regions.all()) {
    const Region& region =
        md->add_region(r.name, r.file, r.begin_line, r.end_line);
    callsites.push_back(&md->add_callsite(region, r.file, r.begin_line));
  }
  // Cnode index i corresponds to profile node i (insertion order).
  std::vector<const Cnode*> cnodes;
  cnodes.reserve(profile.nodes().size());
  for (const sim::ProfileNode& n : profile.nodes()) {
    const Cnode* parent = n.parent == kNoIndex ? nullptr : cnodes[n.parent];
    cnodes.push_back(&md->add_cnode(parent, *callsites[n.region]));
  }

  // --- system dimension -----------------------------------------------------
  build_regular_system(*md, run.cluster.machine_name, run.cluster.num_nodes,
                       run.cluster.procs_per_node, options.topology);

  md->validate();
  return md;
}

/// Synthesizes one repetition's severities into `experiment` (whose
/// metadata came from build_metadata over the same run and options).
void fill_experiment(Experiment& experiment, const sim::RunResult& run,
                     const ConeOptions& options, std::uint64_t run_seed) {
  const int num_ranks = run.cluster.num_ranks();
  const sim::CallProfile& profile = run.profile;
  const Metadata& meta = experiment.metadata();

  experiment.set_name(options.experiment_name);
  experiment.set_attribute("cube::tool", "CONE (simulated)");
  {
    std::string events;
    for (const Event e : options.event_set.events()) {
      if (!events.empty()) events += ' ';
      events += event_info(e).name;
    }
    experiment.set_attribute("cone::event_set", events);
  }

  // Entities by position: the builder added cnodes in profile-node order
  // and threads in rank order, so indices line up even when the metadata
  // instance is a shared one from an earlier repetition.
  const Metric* m_time =
      options.include_time ? meta.find_metric(kConeTime) : nullptr;
  const Metric* m_visits =
      options.include_time ? meta.find_metric(kConeVisits) : nullptr;
  std::map<Event, const Metric*> counter_metric;
  for (const Event e : options.event_set.events()) {
    counter_metric[e] = meta.find_metric(event_info(e).name);
  }

  const counters::JitteredCounterModel model(counters::CounterModel{},
                                             run_seed, options.jitter_sigma);

  for (std::size_t node = 0; node < profile.nodes().size(); ++node) {
    const Cnode& cnode = *meta.cnodes()[node];
    for (int rank = 0; rank < num_ranks; ++rank) {
      const Thread& thread = *meta.threads()[static_cast<std::size_t>(rank)];
      const counters::Workload& w = profile.work(node, rank);
      if (m_time != nullptr) {
        const double t = profile.time(node, rank);
        if (t != 0.0) {
          experiment.set(*m_time, cnode, thread, t);
        }
        const double visits =
            static_cast<double>(profile.visits(node, rank));
        if (visits != 0.0) {
          experiment.set(*m_visits, cnode, thread, visits);
        }
      }
      // Severities are exclusive along the metric tree: a parent event's
      // stored value is its count minus the measured child events' counts
      // (e.g. L1 accesses minus L1 misses = L1 hits — the automatic
      // exclusive-metric computation the paper motivates the tree with).
      for (const auto& [event, metric] : counter_metric) {
        double v = model.value(event, w);
        for (const auto& [other, other_metric] : counter_metric) {
          const counters::EventInfo& info = event_info(other);
          if (info.has_parent && info.parent == event) {
            v -= model.value(other, w);
          }
        }
        if (v != 0.0) {
          experiment.set(*metric, cnode, thread, v);
        }
      }
    }
  }
}

}  // namespace

Experiment profile_run(const sim::RunResult& run, const ConeOptions& options) {
  Experiment experiment(build_metadata(run, options), options.storage);
  fill_experiment(experiment, run, options, options.run_seed);
  return experiment;
}

std::vector<Experiment> profile_series(
    const sim::RunResult& run, const std::vector<std::uint64_t>& run_seeds,
    const ConeOptions& options) {
  // One frozen metadata for the whole series: every repetition differs
  // only in its jitter stream, so the digest-equal operands feed straight
  // into the operators' shared-metadata fast path, and storing the series
  // writes a single blob.
  const std::shared_ptr<const Metadata> metadata =
      freeze_metadata(build_metadata(run, options));
  std::vector<Experiment> series;
  series.reserve(run_seeds.size());
  for (std::size_t i = 0; i < run_seeds.size(); ++i) {
    Experiment experiment(metadata, options.storage);
    fill_experiment(experiment, run, options, run_seeds[i]);
    experiment.set_name(options.experiment_name + "-r" +
                        std::to_string(i + 1));
    experiment.set_attribute("cone::run_seed",
                             std::to_string(run_seeds[i]));
    experiment.set_attribute("cone::series", options.experiment_name);
    series.push_back(std::move(experiment));
  }
  return series;
}

}  // namespace cube::cone
