// Event sets and the hardware restriction model.
//
// Real counter hardware limits which events can be measured together.  The
// paper's example: "POWER4 ... does not permit the combination of
// floating-point instructions with level 1 data-cache misses in the same
// run."  That restriction is the entire motivation for the merge operator's
// §5.2 use case, so this module reproduces it faithfully: an EventSet
// rejects conflicting combinations and over-subscription, forcing separate
// runs exactly as on the paper's hardware.
#pragma once

#include <initializer_list>
#include <vector>

#include "counters/events.hpp"

namespace cube::counters {

/// Restriction table of the modeled counter unit.
struct HardwareModel {
  /// Number of physical counter registers.
  std::size_t num_counters = 4;
  /// Pairs of events that cannot be programmed simultaneously.
  std::vector<std::pair<Event, Event>> conflicts;
};

/// POWER4-style model: 4 counters; FP_INS conflicts with L1_DCM and L2_DCM
/// (the FP unit and the cache unit share a counter multiplexer).
[[nodiscard]] HardwareModel power4_model();

/// A set of events to be measured in one run, checked against a hardware
/// model on every addition.
class EventSet {
 public:
  explicit EventSet(HardwareModel model = power4_model());
  EventSet(std::initializer_list<Event> events,
           HardwareModel model = power4_model());

  /// Adds an event; throws OperationError if the set is full, the event is
  /// already present, or the event conflicts with a member.
  void add(Event e);
  /// True if `e` could be added without violating any restriction.
  [[nodiscard]] bool compatible(Event e) const noexcept;
  [[nodiscard]] bool contains(Event e) const noexcept;
  [[nodiscard]] const std::vector<Event>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] const HardwareModel& model() const noexcept { return model_; }

 private:
  HardwareModel model_;
  std::vector<Event> events_;
};

/// The two predefined sets of the §5.2 scenario, which the hardware model
/// forbids combining: one centered on floating-point work, one on the
/// memory hierarchy.
[[nodiscard]] EventSet event_set_fp();      // TOT_CYC TOT_INS FP_INS
[[nodiscard]] EventSet event_set_cache();   // TOT_CYC L1_DCA L1_DCM L2_DCM

}  // namespace cube::counters
