#include "counters/eventset.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cube::counters {

HardwareModel power4_model() {
  HardwareModel model;
  model.num_counters = 4;
  model.conflicts = {
      {Event::FP_INS, Event::L1_DCM},
      {Event::FP_INS, Event::L2_DCM},
  };
  return model;
}

EventSet::EventSet(HardwareModel model) : model_(std::move(model)) {}

EventSet::EventSet(std::initializer_list<Event> events, HardwareModel model)
    : model_(std::move(model)) {
  for (const Event e : events) add(e);
}

bool EventSet::contains(Event e) const noexcept {
  return std::find(events_.begin(), events_.end(), e) != events_.end();
}

bool EventSet::compatible(Event e) const noexcept {
  if (contains(e)) return false;
  if (events_.size() >= model_.num_counters) return false;
  for (const auto& [a, b] : model_.conflicts) {
    for (const Event member : events_) {
      if ((a == e && b == member) || (b == e && a == member)) return false;
    }
  }
  return true;
}

void EventSet::add(Event e) {
  if (contains(e)) {
    throw OperationError("event " + std::string(event_info(e).name) +
                         " already in the event set");
  }
  if (events_.size() >= model_.num_counters) {
    throw OperationError("event set full: hardware has " +
                         std::to_string(model_.num_counters) + " counters");
  }
  for (const auto& [a, b] : model_.conflicts) {
    for (const Event member : events_) {
      if ((a == e && b == member) || (b == e && a == member)) {
        throw OperationError(
            "hardware restriction: " + std::string(event_info(e).name) +
            " cannot be counted together with " +
            std::string(event_info(member).name));
      }
    }
  }
  events_.push_back(e);
}

EventSet event_set_fp() {
  return EventSet({Event::TOT_CYC, Event::TOT_INS, Event::FP_INS});
}

EventSet event_set_cache() {
  return EventSet({Event::TOT_CYC, Event::L1_DCA, Event::L1_DCM,
                   Event::L2_DCM});
}

}  // namespace cube::counters
