#include "counters/events.hpp"

#include <array>

#include "common/error.hpp"

namespace cube::counters {

namespace {

constexpr std::array<EventInfo, kNumEvents> kEvents = {{
    {Event::TOT_CYC, "PAPI_TOT_CYC", "Total cycles", false, Event::TOT_CYC},
    {Event::TOT_INS, "PAPI_TOT_INS", "Instructions completed", false,
     Event::TOT_INS},
    {Event::FP_INS, "PAPI_FP_INS", "Floating point instructions", true,
     Event::TOT_INS},
    {Event::LD_INS, "PAPI_LD_INS", "Load instructions", true, Event::TOT_INS},
    {Event::SR_INS, "PAPI_SR_INS", "Store instructions", true,
     Event::TOT_INS},
    {Event::L1_DCA, "PAPI_L1_DCA", "Level 1 data cache accesses", false,
     Event::L1_DCA},
    {Event::L1_DCM, "PAPI_L1_DCM", "Level 1 data cache misses", true,
     Event::L1_DCA},
    {Event::L2_DCM, "PAPI_L2_DCM", "Level 2 data cache misses", true,
     Event::L1_DCM},
    {Event::TLB_DM, "PAPI_TLB_DM", "Data TLB misses", false, Event::TLB_DM},
}};

}  // namespace

const EventInfo& event_info(Event e) noexcept {
  return kEvents[static_cast<std::size_t>(e)];
}

std::span<const EventInfo> all_events() noexcept { return kEvents; }

Event parse_event(std::string_view name) {
  for (const EventInfo& info : kEvents) {
    if (info.name == name) return info.code;
  }
  throw Error("unknown hardware event '" + std::string(name) + "'");
}

}  // namespace cube::counters
