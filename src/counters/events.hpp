// Hardware performance events, modeled after the PAPI preset events the
// paper's CONE profiler records (PAPI: Browne et al., IJHPCA 2000).
//
// Events form specialization hierarchies ("more general and more specific
// events, such as cache accesses and cache misses or instructions and
// floating-point instructions") which CONE turns into CUBE metric trees.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace cube::counters {

/// Preset event identifiers.
enum class Event : std::uint8_t {
  TOT_CYC,  ///< total cycles
  TOT_INS,  ///< total instructions completed
  FP_INS,   ///< floating-point instructions (child of TOT_INS)
  LD_INS,   ///< load instructions (child of TOT_INS)
  SR_INS,   ///< store instructions (child of TOT_INS)
  L1_DCA,   ///< level-1 data-cache accesses
  L1_DCM,   ///< level-1 data-cache misses (child of L1_DCA)
  L2_DCM,   ///< level-2 data-cache misses (child of L1_DCM)
  TLB_DM,   ///< data TLB misses
};

inline constexpr std::size_t kNumEvents = 9;

/// Static description of one event.
struct EventInfo {
  Event code;
  std::string_view name;         ///< PAPI-style name, e.g. "PAPI_FP_INS"
  std::string_view description;
  bool has_parent;
  Event parent;  ///< meaningful only if has_parent
};

/// Event table lookup.
[[nodiscard]] const EventInfo& event_info(Event e) noexcept;
/// All events, in enum order.
[[nodiscard]] std::span<const EventInfo> all_events() noexcept;
/// Name lookup; throws cube::Error for an unknown name.
[[nodiscard]] Event parse_event(std::string_view name);

}  // namespace cube::counters
