// Analytic synthesis of hardware-counter values from simulated work.
//
// Substitution (see DESIGN.md): the paper measured real PAPI counters on
// POWER4; we derive counter values deterministically from the abstract
// workload a simulated code block performs.  The algebra only consumes the
// resulting numbers, so an analytic model exercises the identical code
// path while keeping every bench reproducible.  A seeded multiplicative
// jitter models run-to-run measurement variation (what the paper's mean
// operator smooths).
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "counters/events.hpp"

namespace cube::counters {

/// Abstract work performed by a simulated code block.
struct Workload {
  double seconds = 0.0;       ///< wall time consumed
  double flops = 0.0;         ///< floating-point operations
  double mem_refs = 0.0;      ///< data references with locality
  double working_set = 0.0;   ///< bytes revisited by mem_refs
  double cold_bytes = 0.0;    ///< streamed bytes with no reuse (msg copies)

  Workload& operator+=(const Workload& other) noexcept;
  [[nodiscard]] friend Workload operator+(Workload a,
                                          const Workload& b) noexcept {
    a += b;
    return a;
  }
};

/// Cache and pipeline parameters of the modeled processor.
struct ProcessorModel {
  double clock_hz = 1.3e9;        ///< POWER4-class clock
  double l1_bytes = 32.0 * 1024;  ///< L1 data cache capacity
  double l2_bytes = 1.44e6;       ///< L2 capacity
  double line_bytes = 128.0;      ///< cache line size
  double l1_base_miss_rate = 0.004;
  /// L1 miss rate that resident (blocked/looping) computation saturates at
  /// for very large working sets.  Deliberately far below the 1-miss-per-
  /// line rate of streamed data: receive-buffer copies must out-miss
  /// resident compute (the §5.2 MPI_Recv hot spot).
  double l1_saturated_miss_rate = 0.022;
  double l2_base_miss_rate = 0.15;  ///< of L1 misses, when fitting in L2
  double tlb_miss_per_ref = 2e-5;
};

/// Capacity miss rate for a working set against a cache of `cache_bytes`:
/// the base rate while the working set fits, growing smoothly toward
/// `saturated` as the set exceeds capacity.
[[nodiscard]] double capacity_miss_rate(double working_set, double cache_bytes,
                                        double base, double saturated);

/// Deterministic counter model: same workload -> same value.
class CounterModel {
 public:
  explicit CounterModel(ProcessorModel processor = {});

  /// Expected value of event `e` for workload `w`.
  [[nodiscard]] double value(Event e, const Workload& w) const;

  [[nodiscard]] const ProcessorModel& processor() const noexcept {
    return processor_;
  }

 private:
  ProcessorModel processor_;
};

/// Adds run-to-run measurement variation: a per-(run, event) multiplicative
/// factor around 1 with the given relative sigma, deterministic in the
/// seed.  Separate runs (seeds) yield different measurements of the same
/// workload — the input the mean operator exists for.
class JitteredCounterModel {
 public:
  JitteredCounterModel(CounterModel model, std::uint64_t run_seed,
                       double relative_sigma = 0.01);

  [[nodiscard]] double value(Event e, const Workload& w) const;

 private:
  CounterModel model_;
  std::uint64_t run_seed_;
  double relative_sigma_;
};

}  // namespace cube::counters
