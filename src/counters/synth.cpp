#include "counters/synth.hpp"

#include <algorithm>
#include <cmath>

namespace cube::counters {

Workload& Workload::operator+=(const Workload& other) noexcept {
  seconds += other.seconds;
  flops += other.flops;
  mem_refs += other.mem_refs;
  // The combined working set is dominated by the larger block; summing
  // would overstate capacity pressure for repeated visits to the same data.
  working_set = std::max(working_set, other.working_set);
  cold_bytes += other.cold_bytes;
  return *this;
}

double capacity_miss_rate(double working_set, double cache_bytes, double base,
                          double saturated) {
  if (working_set <= cache_bytes || working_set <= 0.0) return base;
  const double excess = 1.0 - cache_bytes / working_set;  // in (0,1)
  return base + (saturated - base) * excess;
}

CounterModel::CounterModel(ProcessorModel processor)
    : processor_(processor) {}

double CounterModel::value(Event e, const Workload& w) const {
  const ProcessorModel& p = processor_;
  const double word_bytes = 8.0;
  const double cold_refs = w.cold_bytes / word_bytes;
  const double refs = w.mem_refs + cold_refs;
  const double l1_rate =
      capacity_miss_rate(w.working_set, p.l1_bytes, p.l1_base_miss_rate,
                         p.l1_saturated_miss_rate);
  // Streamed data misses once per line.
  const double cold_misses = w.cold_bytes / p.line_bytes;
  const double l1_misses = w.mem_refs * l1_rate + cold_misses;
  const double l2_rate =
      capacity_miss_rate(w.working_set, p.l2_bytes, p.l2_base_miss_rate, 0.9);

  switch (e) {
    case Event::TOT_CYC:
      return w.seconds * p.clock_hz;
    case Event::TOT_INS:
      // FP + memory ops + ~60% integer/control overhead.
      return (w.flops + refs) * 1.6;
    case Event::FP_INS:
      return w.flops;
    case Event::LD_INS:
      return refs * 0.65;
    case Event::SR_INS:
      return refs * 0.35;
    case Event::L1_DCA:
      return refs;
    case Event::L1_DCM:
      return l1_misses;
    case Event::L2_DCM:
      // Cold (streamed) misses mostly miss in L2 as well.
      return w.mem_refs * l1_rate * l2_rate + cold_misses * 0.6;
    case Event::TLB_DM:
      return refs * p.tlb_miss_per_ref;
  }
  return 0.0;
}

JitteredCounterModel::JitteredCounterModel(CounterModel model,
                                           std::uint64_t run_seed,
                                           double relative_sigma)
    : model_(model), run_seed_(run_seed), relative_sigma_(relative_sigma) {}

double JitteredCounterModel::value(Event e, const Workload& w) const {
  const double expected = model_.value(e, w);
  if (expected == 0.0) return 0.0;
  // One deterministic factor per (run, event): the whole run's measurement
  // of an event is consistently high or low, as with real counter skew.
  SplitMix64 rng(derive_seed(run_seed_, static_cast<std::uint64_t>(e) + 101));
  const double factor = 1.0 + relative_sigma_ * rng.normal();
  return expected * std::max(0.0, factor);
}

}  // namespace cube::counters
