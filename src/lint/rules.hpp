// The rule registry: every stable diagnostic id the system can emit, its
// default severity level, and the pass that reports it — machine-readable
// so tools (and the docs/LINT.md diff test) can enumerate the catalogue
// without scraping source.
//
// `cube_lint --rules` prints the registry (text or JSON).  A rule landing
// in code without a registry entry (or vice versa) is a bug:
// tests/lint/test_rules_registry.cpp diffs the registry against both the
// docs/LINT.md catalogue tables and the rule-id string literals in
// src/, so the three can never drift apart silently.
#pragma once

#include <span>
#include <string_view>

#include "lint/diagnostics.hpp"

namespace cube::lint {

/// One registered diagnostic rule.
struct RuleInfo {
  std::string_view id;      ///< stable dot-separated id, e.g. "sev.negative"
  Level level;              ///< default severity when the rule fires
  std::string_view pass;    ///< reporting pass (see pass names below)
  std::string_view summary; ///< one-line invariant or meaning
};

/// Pass names used in RuleInfo::pass:
///   "experiment"     lint_experiment (in-memory forests, values, blobs)
///   "file"           lint_file (readers' structured CheckErrors)
///   "repository"     lint_repository
///   "compatibility"  lint_compatibility (operator pre-flight)
///   "plan-shape"     query::lint_plan (performance advisories)
///   "plan-analysis"  query::analyze_plan (static semantic + cost checks)
///
/// Every id is distinct; the span is sorted by id.
[[nodiscard]] std::span<const RuleInfo> rule_registry() noexcept;

/// Registry entry for `id`, or nullptr if the id is unknown.
[[nodiscard]] const RuleInfo* find_rule(std::string_view id) noexcept;

/// Writes the registry as text (one rule per line) or as a JSON array of
/// {id, level, pass, summary} objects.
void write_rules_text(std::ostream& out);
void write_rules_json(std::ostream& out);

}  // namespace cube::lint
