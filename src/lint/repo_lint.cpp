#include "lint/repo_lint.hpp"

#include <cctype>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "common/digest.hpp"
#include "common/error.hpp"
#include "io/index_segments.hpp"
#include "io/meta_format.hpp"
#include "io/repository.hpp"
#include "io/severity_format.hpp"
#include "lint/file_lint.hpp"

namespace cube::lint {

namespace {

// Attribute names the query engine stamps onto cached results; see
// src/query/planner.hpp (kCacheKeyAttribute / kCacheExprAttribute).  Spelled
// out here because lint sits below the query layer (the engine calls INTO
// lint for load validation).
constexpr const char* kCacheKey = "cube::cache-key";
constexpr const char* kCacheExpr = "cube::cache-expr";
constexpr const char* kCacheOperands = "cube::cache-operands";

/// One `id:<entry>@<hexdigest>` operand reference of a canonical cache
/// expression.
struct OperandRef {
  std::string id;
  std::string hex;
};

/// Extracts every operand reference from a canonical expression like
/// `difference(id:before@00ab...,id:after@00cd...)`.
std::vector<OperandRef> parse_operand_refs(const std::string& expr) {
  std::vector<OperandRef> refs;
  std::size_t pos = 0;
  while ((pos = expr.find("id:", pos)) != std::string::npos) {
    pos += 3;
    const std::size_t at = expr.find('@', pos);
    if (at == std::string::npos) break;
    std::size_t end = at + 1;
    while (end < expr.size() &&
           std::isxdigit(static_cast<unsigned char>(expr[end])) != 0) {
      ++end;
    }
    refs.push_back(
        OperandRef{expr.substr(pos, at - pos), expr.substr(at + 1, end - at - 1)});
    pos = end;
  }
  return refs;
}

/// Splits a kCacheOperands attribute ("hex hex hex ...") into tokens.
std::vector<std::string> split_operand_digests(const std::string& value) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos < value.size()) {
    const std::size_t end = value.find(' ', pos);
    const std::size_t stop = end == std::string::npos ? value.size() : end;
    if (stop > pos) out.push_back(value.substr(pos, stop - pos));
    pos = stop + 1;
  }
  return out;
}

void lint_cache_entry(const ExperimentRepository& repo, const RepoEntry& entry,
                      const std::map<std::string, const RepoEntry*>& by_id,
                      const std::set<std::string>& file_digests,
                      DiagnosticSink& sink) {
  // Digest-keyed staleness (the daemon's shared result cache, which keys
  // entries purely by content digests): each recorded operand digest must
  // still be the digest of SOME repository file — under any id.  A digest
  // that resolves nowhere can never be planned again, so no cache key
  // reaching this entry can ever be rebuilt: the entry is dead weight.
  const auto operands = entry.attributes.find(kCacheOperands);
  if (operands != entry.attributes.end()) {
    for (const std::string& hex : split_operand_digests(operands->second)) {
      if (file_digests.count(hex) == 0) {
        sink.warning(
            "repo.stale-cache-operand", "operand digest " + hex,
            "cached result records an operand digest that no repository "
            "file currently hashes to",
            "a digest-keyed result cache (cubed) can never serve or "
            "revalidate this entry; remove it to reclaim space");
      }
    }
  }
  const auto expr = entry.attributes.find(kCacheExpr);
  if (expr == entry.attributes.end()) {
    sink.warning("repo.stale-cache", "attribute \"" + std::string(kCacheKey) +
                                         "\"",
                 "cached result records no canonical expression",
                 "without " + std::string(kCacheExpr) +
                     " the entry can never be reused; remove it");
    return;
  }
  for (const OperandRef& ref : parse_operand_refs(expr->second)) {
    const auto it = by_id.find(ref.id);
    if (it == by_id.end()) {
      sink.warning("repo.stale-cache", "operand \"" + ref.id + "\"",
                   "cached result references an experiment that has left "
                   "the repository",
                   "the cache key can never be produced again; remove the "
                   "entry");
      continue;
    }
    std::uint64_t current = 0;
    try {
      current = digest_file(repo.directory() / it->second->file);
    } catch (const Error&) {
      continue;  // the missing/unreadable file gets its own diagnostic
    }
    if (digest_hex(current) != ref.hex) {
      sink.warning("repo.stale-cache", "operand \"" + ref.id + "\"",
                   "operand file changed since the result was cached "
                   "(recorded digest " + ref.hex + ", file now hashes to " +
                       digest_hex(current) + ")",
                   "the engine will recompute and re-store; remove the "
                   "stale entry to reclaim space");
    }
  }
}

/// Collects every blob file under `dir` with the given extension, flat or
/// one shard level down, in deterministic order.
std::set<std::filesystem::path> collect_blobs(
    const std::filesystem::path& dir, const std::string& extension) {
  std::set<std::filesystem::path> blobs;
  std::error_code ec;
  if (!std::filesystem::exists(dir, ec)) return blobs;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == extension) {
      blobs.insert(entry.path());
    }
  }
  return blobs;
}

/// Relative display name of a blob ("meta/ab/<hex>.meta" or
/// "meta/<hex>.meta").
std::string blob_rel(const std::filesystem::path& root,
                     const std::filesystem::path& blob) {
  return blob.lexically_relative(root).generic_string();
}

/// Checks the blob's shard placement: a blob inside a shard directory
/// whose name is not the first two hex digits of the blob name can never
/// be found by a resolver.
void lint_blob_placement(const std::filesystem::path& repo_root,
                         const std::filesystem::path& blob,
                         DiagnosticSink& sink) {
  const std::string shard = blob.parent_path().filename().string();
  const std::string name = blob.filename().string();
  // Flat (legacy) placement: the parent is meta/ or sev/ itself.
  if (shard == "meta" || shard == "sev") return;
  if (name.size() >= 2 && shard == name.substr(0, 2)) return;
  sink.error("repo.misfiled-blob", blob_rel(repo_root, blob),
             "blob sits in shard directory '" + shard +
                 "/' but its digest shards to '" + name.substr(0, 2) + "/'",
             "resolvers look a digest up only in its own shard (and the "
             "legacy flat location); this blob is unreachable — move it to "
             "the right shard");
}

void lint_blobs(const ExperimentRepository& repo, DiagnosticSink& sink,
                const Options& options) {
  const std::filesystem::path root = repo.directory();
  for (const std::filesystem::path& blob : collect_blobs(root / "meta",
                                                         ".meta")) {
    sink.set_subject(blob_rel(root, blob));
    lint_blob_placement(root, blob, sink);
    try {
      auto md = read_cube_meta_file(blob.string());
      if (meta_blob_name(md->digest()) != blob.filename().string()) {
        sink.error("meta.misfiled-blob", "",
                   "blob holds digest " + digest_hex(md->digest()) +
                       ", not the digest its file name claims",
                   "a resolver looking the content up by its digest will "
                   "never find it here");
      }
      Options blob_options = options;
      blob_options.check_digest = false;  // read_cube_meta_file verified it
      lint_metadata(*md, sink, blob_options);
    } catch (const CheckError& e) {
      sink.error(e.rule(), e.location(), e.detail());
    } catch (const Error& e) {
      sink.error("file.unreadable", "", e.what());
    }
  }
  for (const std::filesystem::path& blob : collect_blobs(root / "sev",
                                                         ".sev")) {
    sink.set_subject(blob_rel(root, blob));
    lint_blob_placement(root, blob, sink);
    try {
      check_cube_sev_file(blob);
      // Severity blobs are content-addressed by the digest of the whole
      // file; a name not matching the bytes is unreachable by resolvers.
      const std::string expected = sev_blob_name(digest_file(blob));
      if (expected != blob.filename().string()) {
        sink.error("sev.misfiled-blob", "",
                   "blob bytes hash to " + expected +
                       ", not the digest its file name claims",
                   "a resolver looking the severity up by its digest will "
                   "never find it here");
      }
    } catch (const CheckError& e) {
      sink.error(e.rule(), e.location(), e.detail());
    } catch (const Error& e) {
      sink.error("file.unreadable", "", e.what());
    }
  }
  for (const std::string& orphan : repo.orphan_blobs()) {
    sink.set_subject({});
    sink.warning("repo.orphan-blob", orphan,
                 "blob is referenced by no index entry",
                 "likely left over from a crash between blob write and "
                 "index write; remove_orphan_blobs() reclaims it");
  }
}

/// Segment files the MANIFEST does not list — crash leftovers of an
/// interrupted seal or compaction (sharded layout only).
void lint_segments(const ExperimentRepository& repo, DiagnosticSink& sink) {
  const SegmentedIndex* index = repo.segmented_index();
  if (index == nullptr) return;
  const SegmentedIndex::StraySegments strays = index->stray_segments();
  sink.set_subject({});
  for (const std::string& rel : strays.orphans) {
    sink.warning("repo.orphan-segment", rel,
                 "segment file is not listed in the index MANIFEST",
                 "an interrupted compaction or seal wrote it but never "
                 "committed; it is never read — remove_stray_segments() "
                 "reclaims it");
  }
  for (const std::string& rel : strays.stale) {
    sink.warning("repo.stale-segment", rel,
                 "superseded segment file left behind by a compaction",
                 "the MANIFEST no longer lists it, so it is dead weight; "
                 "remove_stray_segments() reclaims it");
  }
}

}  // namespace

void lint_repository(const std::filesystem::path& directory,
                     DiagnosticSink& sink, const Options& options) {
  const std::string old_subject = sink.subject();
  std::error_code ec;
  if (!std::filesystem::is_directory(directory, ec)) {
    sink.error("repo.bad-index", directory.string(),
               "not a directory");
    return;
  }
  const bool sharded = SegmentedIndex::present(directory);
  if (!sharded && !std::filesystem::exists(directory / "index.xml", ec)) {
    sink.error("repo.bad-index", directory.string(),
               "directory carries neither an index/MANIFEST nor an "
               "index.xml",
               "an experiment repository is identified by its index; is "
               "this the right path?");
    return;
  }

  std::unique_ptr<ExperimentRepository> repo;
  try {
    repo = std::make_unique<ExperimentRepository>(directory);
  } catch (const Error& e) {
    sink.error("repo.bad-index",
               (directory / (sharded ? "index/MANIFEST" : "index.xml"))
                   .generic_string(),
               e.what());
    return;
  }

  std::map<std::string, const RepoEntry*> by_id;
  for (const RepoEntry& entry : repo->entries()) {
    if (!by_id.emplace(entry.id, &entry).second) {
      sink.error("repo.duplicate-id", "entry \"" + entry.id + "\"",
                 "the id appears more than once in the index",
                 "load(id) resolves to the first occurrence; the later "
                 "entry is unreachable");
    }
  }

  // Digests of every entry file, for the digest-resolution cache check.
  std::set<std::string> file_digests;
  for (const RepoEntry& entry : repo->entries()) {
    try {
      file_digests.insert(
          digest_hex(digest_file(directory / entry.file)));
    } catch (const Error&) {
      // unreadable files get their own diagnostic below
    }
  }

  for (const RepoEntry& entry : repo->entries()) {
    sink.set_subject("entry \"" + entry.id + "\"");
    const std::filesystem::path file = directory / entry.file;
    if (!std::filesystem::is_regular_file(file, ec)) {
      sink.error("repo.missing-file", entry.file,
                 "file listed in the index does not exist");
      continue;
    }
    // Blobs may sit flat (legacy) or in their digest-prefix shard.
    const auto blob_present = [&](const char* dir_name,
                                  const std::string& name) {
      std::error_code probe;
      return std::filesystem::is_regular_file(
                 directory / dir_name / name.substr(0, 2) / name, probe) ||
             std::filesystem::is_regular_file(directory / dir_name / name,
                                              probe);
    };
    if (!entry.meta.empty() && !blob_present("meta", entry.meta + ".meta")) {
      sink.error("repo.missing-blob", "meta/" + entry.meta + ".meta",
                 "metadata blob referenced by the entry does not exist",
                 "every experiment over this metadata is unloadable");
      continue;  // loading below could only repeat the failure
    }
    if (!entry.sev.empty() && !blob_present("sev", entry.sev + ".sev")) {
      sink.error("repo.missing-blob", "sev/" + entry.sev + ".sev",
                 "severity blob referenced by the entry does not exist",
                 "the columnar experiment is unloadable");
      continue;
    }
    lint_file(file, sink, options, repo->resolver(), repo->sev_resolver());
    if (entry.attributes.count(kCacheKey) != 0) {
      lint_cache_entry(*repo, entry, by_id, file_digests, sink);
    }
  }

  lint_blobs(*repo, sink, options);
  lint_segments(*repo, sink);
  sink.set_subject(old_subject);
}

}  // namespace cube::lint
