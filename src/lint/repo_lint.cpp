#include "lint/repo_lint.hpp"

#include <cctype>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "common/digest.hpp"
#include "common/error.hpp"
#include "io/meta_format.hpp"
#include "io/repository.hpp"
#include "lint/file_lint.hpp"

namespace cube::lint {

namespace {

// Attribute names the query engine stamps onto cached results; see
// src/query/planner.hpp (kCacheKeyAttribute / kCacheExprAttribute).  Spelled
// out here because lint sits below the query layer (the engine calls INTO
// lint for load validation).
constexpr const char* kCacheKey = "cube::cache-key";
constexpr const char* kCacheExpr = "cube::cache-expr";
constexpr const char* kCacheOperands = "cube::cache-operands";

/// One `id:<entry>@<hexdigest>` operand reference of a canonical cache
/// expression.
struct OperandRef {
  std::string id;
  std::string hex;
};

/// Extracts every operand reference from a canonical expression like
/// `difference(id:before@00ab...,id:after@00cd...)`.
std::vector<OperandRef> parse_operand_refs(const std::string& expr) {
  std::vector<OperandRef> refs;
  std::size_t pos = 0;
  while ((pos = expr.find("id:", pos)) != std::string::npos) {
    pos += 3;
    const std::size_t at = expr.find('@', pos);
    if (at == std::string::npos) break;
    std::size_t end = at + 1;
    while (end < expr.size() &&
           std::isxdigit(static_cast<unsigned char>(expr[end])) != 0) {
      ++end;
    }
    refs.push_back(
        OperandRef{expr.substr(pos, at - pos), expr.substr(at + 1, end - at - 1)});
    pos = end;
  }
  return refs;
}

/// Splits a kCacheOperands attribute ("hex hex hex ...") into tokens.
std::vector<std::string> split_operand_digests(const std::string& value) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos < value.size()) {
    const std::size_t end = value.find(' ', pos);
    const std::size_t stop = end == std::string::npos ? value.size() : end;
    if (stop > pos) out.push_back(value.substr(pos, stop - pos));
    pos = stop + 1;
  }
  return out;
}

void lint_cache_entry(const ExperimentRepository& repo, const RepoEntry& entry,
                      const std::map<std::string, const RepoEntry*>& by_id,
                      const std::set<std::string>& file_digests,
                      DiagnosticSink& sink) {
  // Digest-keyed staleness (the daemon's shared result cache, which keys
  // entries purely by content digests): each recorded operand digest must
  // still be the digest of SOME repository file — under any id.  A digest
  // that resolves nowhere can never be planned again, so no cache key
  // reaching this entry can ever be rebuilt: the entry is dead weight.
  const auto operands = entry.attributes.find(kCacheOperands);
  if (operands != entry.attributes.end()) {
    for (const std::string& hex : split_operand_digests(operands->second)) {
      if (file_digests.count(hex) == 0) {
        sink.warning(
            "repo.stale-cache-operand", "operand digest " + hex,
            "cached result records an operand digest that no repository "
            "file currently hashes to",
            "a digest-keyed result cache (cubed) can never serve or "
            "revalidate this entry; remove it to reclaim space");
      }
    }
  }
  const auto expr = entry.attributes.find(kCacheExpr);
  if (expr == entry.attributes.end()) {
    sink.warning("repo.stale-cache", "attribute \"" + std::string(kCacheKey) +
                                         "\"",
                 "cached result records no canonical expression",
                 "without " + std::string(kCacheExpr) +
                     " the entry can never be reused; remove it");
    return;
  }
  for (const OperandRef& ref : parse_operand_refs(expr->second)) {
    const auto it = by_id.find(ref.id);
    if (it == by_id.end()) {
      sink.warning("repo.stale-cache", "operand \"" + ref.id + "\"",
                   "cached result references an experiment that has left "
                   "the repository",
                   "the cache key can never be produced again; remove the "
                   "entry");
      continue;
    }
    std::uint64_t current = 0;
    try {
      current = digest_file(repo.directory() / it->second->file);
    } catch (const Error&) {
      continue;  // the missing/unreadable file gets its own diagnostic
    }
    if (digest_hex(current) != ref.hex) {
      sink.warning("repo.stale-cache", "operand \"" + ref.id + "\"",
                   "operand file changed since the result was cached "
                   "(recorded digest " + ref.hex + ", file now hashes to " +
                       digest_hex(current) + ")",
                   "the engine will recompute and re-store; remove the "
                   "stale entry to reclaim space");
    }
  }
}

void lint_blobs(const ExperimentRepository& repo, DiagnosticSink& sink,
                const Options& options) {
  const std::filesystem::path meta_dir = repo.directory() / "meta";
  std::error_code ec;
  if (!std::filesystem::exists(meta_dir, ec)) return;
  std::set<std::filesystem::path> blobs;  // deterministic report order
  for (const auto& entry : std::filesystem::directory_iterator(meta_dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".meta") {
      blobs.insert(entry.path());
    }
  }
  for (const std::filesystem::path& blob : blobs) {
    sink.set_subject("meta/" + blob.filename().string());
    try {
      auto md = read_cube_meta_file(blob.string());
      if (meta_blob_name(md->digest()) != blob.filename().string()) {
        sink.error("meta.misfiled-blob", "",
                   "blob holds digest " + digest_hex(md->digest()) +
                       ", not the digest its file name claims",
                   "a resolver looking the content up by its digest will "
                   "never find it here");
      }
      Options blob_options = options;
      blob_options.check_digest = false;  // read_cube_meta_file verified it
      lint_metadata(*md, sink, blob_options);
    } catch (const CheckError& e) {
      sink.error(e.rule(), e.location(), e.detail());
    } catch (const Error& e) {
      sink.error("file.unreadable", "", e.what());
    }
  }
  for (const std::string& orphan : repo.orphan_blobs()) {
    sink.set_subject({});
    sink.warning("repo.orphan-blob", orphan,
                 "metadata blob is referenced by no index entry",
                 "likely left over from a crash between blob write and "
                 "index write; remove_orphan_blobs() reclaims it");
  }
}

}  // namespace

void lint_repository(const std::filesystem::path& directory,
                     DiagnosticSink& sink, const Options& options) {
  const std::string old_subject = sink.subject();
  std::error_code ec;
  if (!std::filesystem::is_directory(directory, ec)) {
    sink.error("repo.bad-index", directory.string(),
               "not a directory");
    return;
  }
  if (!std::filesystem::exists(directory / "index.xml", ec)) {
    sink.error("repo.bad-index", directory.string(),
               "directory carries no index.xml",
               "an experiment repository is identified by its index; is "
               "this the right path?");
    return;
  }

  std::unique_ptr<ExperimentRepository> repo;
  try {
    repo = std::make_unique<ExperimentRepository>(directory);
  } catch (const Error& e) {
    sink.error("repo.bad-index", (directory / "index.xml").string(), e.what());
    return;
  }

  std::map<std::string, const RepoEntry*> by_id;
  for (const RepoEntry& entry : repo->entries()) {
    if (!by_id.emplace(entry.id, &entry).second) {
      sink.error("repo.duplicate-id", "entry \"" + entry.id + "\"",
                 "the id appears more than once in the index",
                 "load(id) resolves to the first occurrence; the later "
                 "entry is unreachable");
    }
  }

  // Digests of every entry file, for the digest-resolution cache check.
  std::set<std::string> file_digests;
  for (const RepoEntry& entry : repo->entries()) {
    try {
      file_digests.insert(
          digest_hex(digest_file(directory / entry.file)));
    } catch (const Error&) {
      // unreadable files get their own diagnostic below
    }
  }

  for (const RepoEntry& entry : repo->entries()) {
    sink.set_subject("entry \"" + entry.id + "\"");
    const std::filesystem::path file = directory / entry.file;
    if (!std::filesystem::is_regular_file(file, ec)) {
      sink.error("repo.missing-file", entry.file,
                 "file listed in the index does not exist");
      continue;
    }
    if (!entry.meta.empty() &&
        !std::filesystem::is_regular_file(
            directory / "meta" / (entry.meta + ".meta"), ec)) {
      sink.error("repo.missing-blob", "meta/" + entry.meta + ".meta",
                 "metadata blob referenced by the entry does not exist",
                 "every experiment over this metadata is unloadable");
      continue;  // loading below could only repeat the failure
    }
    lint_file(file, sink, options, repo->resolver());
    if (entry.attributes.count(kCacheKey) != 0) {
      lint_cache_entry(*repo, entry, by_id, file_digests, sink);
    }
  }

  lint_blobs(*repo, sink, options);
  sink.set_subject(old_subject);
}

}  // namespace cube::lint
