// Repository-level lint: invariants of an experiment repository as a whole.
//
// Beyond per-file validity (file_lint.hpp) a repository makes promises of
// its own: the index lists each id once and every listed file exists, all
// referenced metadata blobs are present, correctly filed, and reachable,
// no blob is orphaned, and cached query results still describe operands
// that exist in their recorded state.  This pass checks all of them and
// then lints every entry's file through the repository's own resolver, so
// blob-backed entries share parsed metadata exactly as real loads do.
#pragma once

#include <filesystem>

#include "lint/lint.hpp"

namespace cube::lint {

/// Lints the repository at `directory`: index integrity, entry files,
/// metadata blobs, orphans, and cached-result staleness.  Diagnostics are
/// prefixed with the entry id (or blob file name) they concern.
void lint_repository(const std::filesystem::path& directory,
                     DiagnosticSink& sink, const Options& options = {});

}  // namespace cube::lint
