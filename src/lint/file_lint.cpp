#include "lint/file_lint.hpp"

#include <fstream>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "io/binary_format.hpp"
#include "io/cube_format.hpp"

namespace cube::lint {

namespace {

/// Reports a load failure as a diagnostic, preserving the structure of a
/// CheckError and degrading gracefully for the legacy exception types.
void report_exception(DiagnosticSink& sink) {
  try {
    throw;
  } catch (const CheckError& e) {
    sink.error(e.rule(), e.location(), e.detail());
  } catch (const ParseError& e) {
    sink.error("parse.syntax",
               "line " + std::to_string(e.line()) + ", column " +
                   std::to_string(e.column()),
               e.what());
  } catch (const ValidationError& e) {
    sink.error("model.invalid", "", e.what());
  } catch (const IoError& e) {
    sink.error("file.io", "", e.what());
  } catch (const Error& e) {
    sink.error("file.unreadable", "", e.what());
  }
}

}  // namespace

std::optional<Experiment> lint_file(const std::filesystem::path& path,
                                    DiagnosticSink& sink,
                                    const Options& options,
                                    const MetadataResolver& resolver,
                                    const SeverityResolver& sev_resolver,
                                    FileKind* kind_out) {
  if (kind_out != nullptr) *kind_out = FileKind::Unreadable;

  std::string head;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      sink.error("file.io", "", "cannot open file '" + path.string() + "'");
      return std::nullopt;
    }
    char buffer[8] = {};
    in.read(buffer, sizeof buffer);
    head.assign(buffer, static_cast<std::size_t>(in.gcount()));
  }

  if (is_cube_meta(head)) {
    if (kind_out != nullptr) *kind_out = FileKind::MetadataBlob;
    try {
      // read_cube_meta_file already proves content-vs-recorded digest; the
      // structural recheck below would only repeat it.
      auto md = read_cube_meta_file(path.string());
      Options blob_options = options;
      blob_options.check_digest = false;
      lint_metadata(*md, sink, blob_options);
    } catch (const Error&) {
      report_exception(sink);
    }
    return std::nullopt;
  }

  if (kind_out != nullptr) *kind_out = FileKind::Experiment;
  try {
    Experiment e = read_experiment_file(path.string(), StorageKind::Dense,
                                        resolver, sev_resolver);
    lint_experiment(e, sink, options);
    return e;
  } catch (const Error&) {
    report_exception(sink);
    return std::nullopt;
  }
}

}  // namespace cube::lint
