#include "lint/rules.hpp"

#include <algorithm>
#include <ostream>

namespace cube::lint {

namespace {

constexpr Level kError = Level::Error;
constexpr Level kWarning = Level::Warning;
constexpr Level kNote = Level::Note;

// Sorted by id (find_rule binary-searches).
constexpr RuleInfo kRules[] = {
    {"compat.metric-unit", kError, "compatibility",
     "operands of one operator agree on every shared metric's unit"},
    {"compat.mixed-kind", kNote, "compatibility",
     "aggregating original with derived experiments is usually unintended"},
    {"compat.thread-shape", kNote, "compatibility",
     "operands span one (rank, thread id) set; absent tuples read as zero"},
    {"cost.over-budget", kError, "plan-analysis",
     "predicted peak resident bytes stay within the configured budget"},
    {"cost.summary", kNote, "plan-analysis",
     "one-line cold/warm cost totals of the analyzed plan"},
    {"file.bad-magic", kError, "file",
     "the stream starts with a known CUBE format magic"},
    {"file.io", kError, "file", "the file is readable"},
    {"file.trailing-bytes", kError, "file",
     "nothing follows the end of the encoded stream"},
    {"file.truncated", kError, "file",
     "the stream holds every field its header promises"},
    {"file.unreadable", kError, "file",
     "the file loads through its format reader"},
    {"forest.cnode-cycle", kError, "experiment",
     "every call-tree parent chain reaches a root"},
    {"forest.duplicate-id", kError, "file",
     "an id appears once within one dimension of a document"},
    {"forest.duplicate-metric", kError, "experiment",
     "metric unique names identify metrics across experiments"},
    {"forest.duplicate-rank", kError, "experiment",
     "processes are identified by their application-level rank"},
    {"forest.duplicate-thread", kError, "experiment",
     "threads are identified by (rank, thread id)"},
    {"forest.empty-dimension", kWarning, "experiment",
     "metrics, call paths, and threads are all non-empty"},
    {"forest.empty-machine", kWarning, "experiment",
     "machines hold at least one node"},
    {"forest.empty-node", kWarning, "experiment",
     "nodes hold at least one process"},
    {"forest.empty-process", kError, "experiment",
     "every process owns at least one thread"},
    {"forest.index-mismatch", kError, "experiment",
     "entity indices equal their position in the owner vector"},
    {"forest.metric-cycle", kError, "experiment",
     "every metric parent chain reaches a root"},
    {"forest.parent-link", kError, "experiment",
     "parent/child links are symmetric"},
    {"forest.shadowed-region", kWarning, "experiment",
     "duplicate (name, module) regions can never be matched"},
    {"forest.unit-mismatch", kError, "experiment",
     "all metrics of one tree share the unit"},
    {"meta.bad-ref", kError, "file",
     "<metaref> digests are 16 hex digits"},
    {"meta.digest-mismatch", kError, "experiment",
     "metadata content hashes to its recorded digest"},
    {"meta.misfiled-blob", kError, "repository",
     "blob meta/<digest>.meta holds the metadata with that digest"},
    {"meta.unfrozen", kNote, "experiment",
     "metadata not yet frozen (no digest available)"},
    {"meta.unresolved-ref", kError, "file",
     "a by-reference file's metadata digest resolves to a blob"},
    {"model.invalid", kError, "file",
     "the reader's own validation accepts the data"},
    {"parse.number", kError, "file",
     "numeric attributes and tokens parse"},
    {"parse.syntax", kError, "file", "the XML document is well-formed"},
    {"perf.series-foldable", kNote, "plan-shape",
     "a nested same-operator chain could fold into one n-ary reduction"},
    {"plan.integration-failed", kError, "plan-analysis",
     "operand metadata integrates under the planned operator"},
    {"plan.metric-unit", kError, "plan-analysis",
     "operands of one planned application agree on every metric's unit"},
    {"plan.mixed-kind", kNote, "plan-analysis",
     "a planned aggregation mixes original and derived experiments"},
    {"plan.opaque-operand", kWarning, "plan-analysis",
     "an operand's geometry is statically known (metadata blob resolvable)"},
    {"plan.thread-shape", kNote, "plan-analysis",
     "operands of one planned application span one (rank, thread id) set"},
    {"ref.dangling-callee", kError, "file",
     "every call site targets a defined region"},
    {"ref.dangling-callsite", kError, "file",
     "every cnode enters through a defined call site"},
    {"ref.dangling-cnode", kError, "file",
     "severity rows reference defined call-tree nodes"},
    {"ref.dangling-metric", kError, "file",
     "severity rows reference defined metrics"},
    {"ref.foreign-entity", kError, "experiment",
     "entity pointers resolve into the same metadata instance"},
    {"repo.bad-index", kError, "repository",
     "the directory holds a parseable repository index"},
    {"repo.duplicate-id", kError, "repository",
     "repository entry ids are unique"},
    {"repo.misfiled-blob", kError, "repository",
     "sharded blobs sit in the shard their name's hex prefix selects"},
    {"repo.missing-blob", kError, "repository",
     "every referenced metadata and severity blob exists"},
    {"repo.missing-file", kError, "repository",
     "every indexed experiment file exists"},
    {"repo.orphan-blob", kWarning, "repository",
     "every blob is referenced by some entry"},
    {"repo.orphan-segment", kWarning, "repository",
     "every index segment past the MANIFEST's last entry is listed"},
    {"repo.stale-cache", kWarning, "repository",
     "cached query results reference operands in their recorded state"},
    {"repo.stale-cache-operand", kWarning, "repository",
     "every recorded cache-operand digest still names some repository file"},
    {"repo.stale-segment", kWarning, "repository",
     "no superseded segment or *.tmp file outlives its compaction"},
    {"sev.bad-ref", kError, "file",
     "<sevref> digests are 16 hex digits"},
    {"sev.dims-mismatch", kError, "experiment",
     "the severity store's dimensions equal the metadata's"},
    {"sev.malformed-value", kError, "file", "severity cells hold numbers"},
    {"sev.misfiled-blob", kError, "repository",
     "a severity blob's bytes hash to the digest its name claims"},
    {"sev.negative", kWarning, "experiment",
     "original experiments' severities are non-negative"},
    {"sev.non-finite", kError, "experiment",
     "severities are finite (NaN/Inf poison every aggregation)"},
    {"sev.out-of-range", kError, "experiment",
     "severity is defined exactly on metric x cnode x thread"},
    {"sev.unresolved-ref", kError, "file",
     "a by-reference file's severity digest resolves to a blob"},
};

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::span<const RuleInfo> rule_registry() noexcept { return kRules; }

const RuleInfo* find_rule(std::string_view id) noexcept {
  const auto it = std::lower_bound(
      std::begin(kRules), std::end(kRules), id,
      [](const RuleInfo& rule, std::string_view key) { return rule.id < key; });
  if (it == std::end(kRules) || it->id != id) return nullptr;
  return &*it;
}

void write_rules_text(std::ostream& out) {
  for (const RuleInfo& rule : kRules) {
    out << rule.id << "  " << level_name(rule.level) << "  " << rule.pass
        << "  " << rule.summary << "\n";
  }
}

void write_rules_json(std::ostream& out) {
  out << "[";
  bool first = true;
  for (const RuleInfo& rule : kRules) {
    out << (first ? "\n" : ",\n") << "  {\"id\": \"" << json_escape(rule.id)
        << "\", \"level\": \"" << level_name(rule.level) << "\", \"pass\": \""
        << json_escape(rule.pass) << "\", \"summary\": \""
        << json_escape(rule.summary) << "\"}";
    first = false;
  }
  out << "\n]\n";
}

}  // namespace cube::lint
