#include "lint/lint.hpp"

#include <cmath>
#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace cube::lint {

namespace {

std::string metric_location(const Metric& m) {
  return "metric \"" + m.unique_name() + "\"";
}

std::string cnode_location(const Cnode& c) {
  return "cnode #" + std::to_string(c.index()) + " (" + c.callee().name() +
         ")";
}

std::string cell_location(const Metadata& md, std::size_t m, std::size_t c,
                          std::size_t t) {
  std::string out = m < md.metrics().size()
                        ? metric_location(*md.metrics()[m])
                        : "metric #" + std::to_string(m);
  out += " / ";
  out += c < md.cnodes().size() ? cnode_location(*md.cnodes()[c])
                                : "cnode #" + std::to_string(c);
  out += " / thread #" + std::to_string(t);
  return out;
}

/// True if `entity` is the `index`-th element of `owned` — i.e. a pointer
/// into this metadata, not into some other instance.
template <typename T>
bool owned_by(const std::vector<std::unique_ptr<T>>& owned, const T* entity,
              std::size_t index) {
  return index < owned.size() && owned[index].get() == entity;
}

/// Checks one forest (metrics or cnodes): dense indices, parent/child link
/// symmetry, parent ownership, and acyclicity of the parent chains.
template <typename Node>
void lint_forest(const std::vector<std::unique_ptr<Node>>& nodes,
                 const char* kind,
                 const std::function<std::string(const Node&)>& location,
                 DiagnosticSink& sink) {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const Node& n = *nodes[i];
    if (n.index() != i) {
      sink.error("forest.index-mismatch", location(n),
                 std::string(kind) + " at position " + std::to_string(i) +
                     " carries index " + std::to_string(n.index()),
                 "dense indices must equal the entity's position");
      continue;  // the link checks below index by position
    }
    if (n.parent() != nullptr) {
      const Node* parent = n.parent();
      if (!owned_by(nodes, parent, parent->index())) {
        sink.error("ref.foreign-entity", location(n),
                   std::string(kind) +
                       " has a parent that this metadata does not own");
        continue;
      }
      bool linked = false;
      for (const Node* child : parent->children()) {
        if (child == &n) {
          linked = true;
          break;
        }
      }
      if (!linked) {
        sink.error("forest.parent-link", location(n),
                   std::string(kind) + " names " + location(*parent) +
                       " as parent, but is missing from its child list");
      }
    }
    for (const Node* child : n.children()) {
      if (child == nullptr || !owned_by(nodes, child, child->index())) {
        sink.error("ref.foreign-entity", location(n),
                   std::string(kind) +
                       " lists a child that this metadata does not own");
        continue;
      }
      if (child->parent() != &n) {
        sink.error("forest.parent-link", location(*child),
                   std::string(kind) + " is listed as child of " +
                       location(n) + " but points at a different parent");
      }
    }
    // Acyclicity: a parent chain longer than the forest must loop.
    const Node* up = n.parent();
    std::size_t steps = 0;
    while (up != nullptr && steps <= nodes.size()) {
      up = up->parent();
      ++steps;
    }
    if (up != nullptr) {
      sink.error(std::string("forest.") + kind + "-cycle", location(n),
                 std::string("the ") + kind +
                     "'s parent chain never reaches a root (cycle)");
    }
  }
}

void lint_metric_dimension(const Metadata& md, DiagnosticSink& sink) {
  lint_forest<Metric>(
      md.metrics(), "metric", [](const Metric& m) { return metric_location(m); },
      sink);
  std::map<std::string, const Metric*> seen;
  for (const auto& m : md.metrics()) {
    const auto [it, fresh] = seen.emplace(m->unique_name(), m.get());
    if (!fresh) {
      sink.error("forest.duplicate-metric", metric_location(*m),
                 "unique name is already taken by metric #" +
                     std::to_string(it->second->index()),
                 "metric unique names identify metrics across experiments "
                 "and must be unique");
    }
    if (m->parent() != nullptr && m->unit() != m->parent()->unit()) {
      sink.error("forest.unit-mismatch", metric_location(*m),
                 "unit '" + std::string(unit_name(m->unit())) +
                     "' differs from parent's '" +
                     std::string(unit_name(m->parent()->unit())) + "'",
                 "all metrics of one tree share the unit (a parent metric "
                 "includes its children)");
    }
  }
}

void lint_program_dimension(const Metadata& md, DiagnosticSink& sink) {
  lint_forest<Cnode>(
      md.cnodes(), "cnode", [](const Cnode& c) { return cnode_location(c); },
      sink);
  for (std::size_t i = 0; i < md.regions().size(); ++i) {
    if (md.regions()[i]->index() != i) {
      sink.error("forest.index-mismatch",
                 "region \"" + md.regions()[i]->name() + "\"",
                 "region at position " + std::to_string(i) +
                     " carries index " +
                     std::to_string(md.regions()[i]->index()));
    }
  }
  std::map<std::pair<std::string, std::string>, const Region*> regions;
  for (const auto& r : md.regions()) {
    const auto [it, fresh] =
        regions.emplace(std::make_pair(r->name(), r->module()), r.get());
    if (!fresh) {
      sink.warning("forest.shadowed-region",
                   "region \"" + r->name() + "\" (" + r->module() + ")",
                   "(name, module) duplicates region #" +
                       std::to_string(it->second->index()),
                   "cross-experiment matching uses the first occurrence; "
                   "the duplicate can never be matched");
    }
  }
  for (std::size_t i = 0; i < md.callsites().size(); ++i) {
    const CallSite& cs = *md.callsites()[i];
    if (cs.index() != i) {
      sink.error("forest.index-mismatch", "csite #" + std::to_string(i),
                 "call site at position " + std::to_string(i) +
                     " carries index " + std::to_string(cs.index()));
    }
    const Region& callee = cs.callee();
    if (!owned_by(md.regions(), &callee, callee.index())) {
      sink.error("ref.dangling-callee", "csite #" + std::to_string(cs.index()),
                 "call site's callee region is not owned by this metadata");
    }
  }
  for (const auto& c : md.cnodes()) {
    const CallSite& cs = c->callsite();
    if (!owned_by(md.callsites(), &cs, cs.index())) {
      sink.error("ref.dangling-callsite", cnode_location(*c),
                 "cnode's call site is not owned by this metadata");
    }
  }
}

void lint_system_dimension(const Metadata& md, DiagnosticSink& sink) {
  for (const auto& machine : md.machines()) {
    if (machine->nodes().empty()) {
      sink.warning("forest.empty-machine",
                   "machine \"" + machine->name() + "\"",
                   "machine hosts no nodes");
    }
  }
  for (const auto& node : md.nodes()) {
    if (node->processes().empty()) {
      sink.warning("forest.empty-node", "node \"" + node->name() + "\"",
                   "node hosts no processes");
    }
    if (!owned_by(md.machines(), &node->machine(), node->machine().index())) {
      sink.error("ref.foreign-entity", "node \"" + node->name() + "\"",
                 "node's machine is not owned by this metadata");
    }
  }
  std::map<long, const Process*> ranks;
  for (const auto& p : md.processes()) {
    const std::string loc = "process rank " + std::to_string(p->rank());
    const auto [it, fresh] = ranks.emplace(p->rank(), p.get());
    if (!fresh) {
      sink.error("forest.duplicate-rank", loc,
                 "rank is already taken by process #" +
                     std::to_string(it->second->index()),
                 "process ranks are the cross-experiment identity of the "
                 "system dimension and must be unique");
    }
    if (p->threads().empty()) {
      sink.error("forest.empty-process", loc,
                 "process owns no threads",
                 "the thread level is mandatory: a pure message-passing "
                 "process is a single-threaded process");
    }
    if (!owned_by(md.nodes(), &p->node(), p->node().index())) {
      sink.error("ref.foreign-entity", loc,
                 "process's node is not owned by this metadata");
    }
  }
  std::map<std::pair<long, long>, const Thread*> thread_ids;
  for (std::size_t i = 0; i < md.threads().size(); ++i) {
    const Thread& t = *md.threads()[i];
    const std::string loc = "thread #" + std::to_string(i);
    if (t.index() != i) {
      sink.error("forest.index-mismatch", loc,
                 "thread at position " + std::to_string(i) +
                     " carries index " + std::to_string(t.index()));
    }
    if (!owned_by(md.processes(), &t.process(), t.process().index())) {
      sink.error("ref.foreign-entity", loc,
                 "thread's process is not owned by this metadata");
      continue;
    }
    const auto [it, fresh] =
        thread_ids.emplace(std::make_pair(t.rank(), t.thread_id()), &t);
    if (!fresh) {
      sink.error("forest.duplicate-thread", loc,
                 "(rank " + std::to_string(t.rank()) + ", thread id " +
                     std::to_string(t.thread_id()) +
                     ") is already taken by thread #" +
                     std::to_string(it->second->index()),
                 "(rank, thread id) is the cross-experiment identity of a "
                 "thread and must be unique");
    }
  }
}

}  // namespace

void lint_metadata(const Metadata& metadata, DiagnosticSink& sink,
                   const Options& options) {
  if (metadata.num_metrics() == 0) {
    sink.warning("forest.empty-dimension", "", "metadata defines no metrics");
  }
  if (metadata.num_cnodes() == 0) {
    sink.warning("forest.empty-dimension", "",
                 "metadata defines no call-tree nodes");
  }
  if (metadata.num_threads() == 0) {
    sink.warning("forest.empty-dimension", "", "metadata defines no threads");
  }
  lint_metric_dimension(metadata, sink);
  lint_program_dimension(metadata, sink);
  lint_system_dimension(metadata, sink);

  if (!metadata.frozen()) {
    sink.note("meta.unfrozen", "",
              "metadata is still mutable; the structural digest is not "
              "available yet");
  } else if (options.check_digest) {
    // The frozen digest was computed once at freeze(); recompute it over a
    // structural copy to prove the instance was not corrupted since.
    auto copy = metadata.clone();
    copy->freeze();
    if (copy->digest() != metadata.digest()) {
      sink.error("meta.digest-mismatch", "",
                 "frozen digest does not match a recomputation over the "
                 "current entities",
                 "the metadata was structurally modified after freeze(), "
                 "which the frozen contract forbids");
    }
  }
}

namespace {

/// Reports value findings with a cap: the first `max_per_rule` get their
/// own diagnostic, the rest fold into one summary.
class CappedRule {
 public:
  CappedRule(DiagnosticSink& sink, std::string rule, Level level,
             std::size_t cap)
      : sink_(sink), rule_(std::move(rule)), level_(level), cap_(cap) {}

  void report(std::string location, std::string message, std::string hint) {
    ++count_;
    if (cap_ == 0 || count_ <= cap_) {
      sink_.report(rule_, level_, std::move(location), std::move(message),
                   std::move(hint));
    }
  }

  void finish(const std::string& what) {
    if (cap_ != 0 && count_ > cap_) {
      sink_.report(rule_, level_, "",
                   std::to_string(count_ - cap_) + " further " + what +
                       " suppressed (" + std::to_string(count_) +
                       " in total)");
    }
  }

 private:
  DiagnosticSink& sink_;
  std::string rule_;
  Level level_;
  std::size_t cap_;
  std::size_t count_ = 0;
};

}  // namespace

void lint_experiment(const Experiment& experiment, DiagnosticSink& sink,
                     const Options& options) {
  const Metadata& md = experiment.metadata();
  lint_metadata(md, sink, options);

  const SeverityStore& sev = experiment.severity();
  if (sev.num_metrics() != md.num_metrics() ||
      sev.num_cnodes() != md.num_cnodes() ||
      sev.num_threads() != md.num_threads()) {
    sink.error(
        "sev.dims-mismatch", "",
        "severity store spans " + std::to_string(sev.num_metrics()) + " x " +
            std::to_string(sev.num_cnodes()) + " x " +
            std::to_string(sev.num_threads()) + " cells but the metadata "
            "defines " + std::to_string(md.num_metrics()) + " x " +
            std::to_string(md.num_cnodes()) + " x " +
            std::to_string(md.num_threads()),
        "the severity function must be defined exactly on the metric x "
        "cnode x thread cross product");
    return;  // cell decoding below would mislocate findings
  }

  const std::string kind_attr = experiment.attribute("cube::kind");
  if (!kind_attr.empty() && kind_attr != "original" && kind_attr != "derived") {
    sink.warning("attr.bad-kind", "attribute \"cube::kind\"",
                 "value '" + kind_attr +
                     "' is neither 'original' nor 'derived'",
                 "unknown kinds silently fall back to original");
  }
  if (experiment.kind() == ExperimentKind::Derived &&
      experiment.provenance().empty()) {
    sink.note("attr.missing-provenance", "",
              "derived experiment carries no cube::provenance attribute");
  }

  if (!options.check_values) return;

  CappedRule non_finite(sink, "sev.non-finite", Level::Error,
                        options.max_per_rule);
  CappedRule negative(sink, "sev.negative", Level::Warning,
                      options.max_per_rule);
  const bool original = experiment.kind() == ExperimentKind::Original;
  const std::size_t threads = sev.num_threads();
  const std::size_t plane = sev.plane_size();
  const auto check_cell = [&](std::size_t flat, Severity v) {
    const std::size_t m = plane == 0 ? 0 : flat / plane;
    const std::size_t rem = plane == 0 ? 0 : flat % plane;
    const std::size_t c = threads == 0 ? 0 : rem / threads;
    const std::size_t t = threads == 0 ? 0 : rem % threads;
    if (!std::isfinite(v)) {
      non_finite.report(cell_location(md, m, c, t),
                        "severity value is not finite",
                        "NaN/Inf poison every aggregation and operator "
                        "result they touch");
    } else if (v < 0.0 && original) {
      negative.report(cell_location(md, m, c, t),
                      "negative severity in an original experiment",
                      "measured quantities (sec, bytes, occ) are "
                      "non-negative; only derived differences may go "
                      "negative");
    }
  };

  if (sev.kind() == StorageKind::Dense) {
    const auto cells = static_cast<const DenseSeverity&>(sev).cells();
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (cells[i] != 0.0) check_cell(i, cells[i]);
    }
  } else {
    for (const auto& [key, value] :
         static_cast<const SparseSeverity&>(sev).sorted_cells()) {
      check_cell(static_cast<std::size_t>(key), value);
    }
  }
  non_finite.finish("non-finite cells");
  negative.finish("negative cells");
}

void lint_compatibility(std::span<const Experiment* const> operands,
                        DiagnosticSink& sink) {
  // Metric identity is (unique name, unit): operands that disagree on a
  // metric's unit cannot integrate — the merged metric set would need two
  // metrics under one unique name.
  std::map<std::string, std::pair<Unit, std::size_t>> units;
  for (std::size_t op = 0; op < operands.size(); ++op) {
    for (const auto& m : operands[op]->metadata().metrics()) {
      const auto [it, fresh] =
          units.emplace(m->unique_name(), std::make_pair(m->unit(), op));
      if (!fresh && it->second.first != m->unit()) {
        sink.error("compat.metric-unit", metric_location(*m),
                   "operand #" + std::to_string(op) + " measures in '" +
                       std::string(unit_name(m->unit())) +
                       "' but operand #" + std::to_string(it->second.second) +
                       " measures in '" +
                       std::string(unit_name(it->second.first)) + "'",
                   "metadata integration cannot merge metrics that share a "
                   "unique name but differ in unit");
      }
    }
  }

  // Differing system shapes are legal (absent tuples are zero-extended)
  // but worth surfacing: a mean over runs at different scales is usually a
  // selector mistake, not an intent.
  std::set<std::pair<long, long>> first_shape;
  bool shape_noted = false;
  for (std::size_t op = 0; op < operands.size() && !shape_noted; ++op) {
    std::set<std::pair<long, long>> shape;
    for (const auto& t : operands[op]->metadata().threads()) {
      shape.emplace(t->rank(), t->thread_id());
    }
    if (op == 0) {
      first_shape = std::move(shape);
    } else if (shape != first_shape) {
      sink.note("compat.thread-shape", "operand #" + std::to_string(op),
                "system dimension differs from operand #0's (different "
                "(rank, thread id) sets)",
                "tuples absent from an operand contribute zero to element-"
                "wise operators");
      shape_noted = true;
    }
  }

  bool any_original = false;
  bool any_derived = false;
  for (const Experiment* e : operands) {
    (e->kind() == ExperimentKind::Original ? any_original : any_derived) =
        true;
  }
  if (any_original && any_derived) {
    sink.note("compat.mixed-kind", "",
              "operands mix original and derived experiments",
              "differences already encode a comparison; aggregating them "
              "with measured runs is usually unintended");
  }
}

void require_valid(const Experiment& experiment, const std::string& context,
                   const Options& options) {
  DiagnosticSink sink;
  lint_experiment(experiment, sink, options);
  if (!sink.reached(Level::Error)) return;
  std::ostringstream message;
  message << context << " failed validation with " << sink.errors()
          << " error(s): ";
  bool first = true;
  for (const Diagnostic& d : sink.diagnostics()) {
    if (d.level != Level::Error) continue;
    if (!first) message << "; ";
    message << "[" << d.rule << "] ";
    if (!d.location.empty()) message << d.location << ": ";
    message << d.message;
    first = false;
  }
  throw ValidationError(message.str());
}

std::function<void(const Experiment&, const std::string&)> load_validator(
    Options options) {
  return [options](const Experiment& experiment, const std::string& context) {
    require_valid(experiment, context, options);
  };
}

}  // namespace cube::lint
