// File-level lint: runs the invariant checker over on-disk artifacts.
//
// The readers in src/io already detect format violations and throw — most
// of them as structured CheckErrors carrying a rule id and a location.
// This pass turns a load attempt into diagnostics instead of an exception:
// a CheckError maps 1:1 onto a Diagnostic, the legacy exception types map
// onto the generic parse/io rules, and a file that loads cleanly is then
// handed to the in-memory passes (lint.hpp).
#pragma once

#include <filesystem>
#include <optional>

#include "io/meta_format.hpp"
#include "io/severity_format.hpp"
#include "lint/lint.hpp"

namespace cube::lint {

/// What lint_file found the artifact to be.
enum class FileKind { Experiment, MetadataBlob, Unreadable };

/// Lints one artifact: a CUBE XML / CUBEBIN experiment file or a CUBEMET1
/// metadata blob (classified by content).  Load failures are reported into
/// `sink`; a loaded experiment (or blob) additionally runs through
/// lint_experiment / lint_metadata.
///
/// By-reference files resolve through `resolver` / `sev_resolver` when
/// given, else against the meta/ and sev/ directories of the enclosing
/// repository (read_experiment_file's fallback).  The caller owns the
/// sink's subject; this function does not change it.
///
/// Returns the successfully loaded experiment (empty for blobs or on
/// failure) so callers can chain further checks without re-reading.
std::optional<Experiment> lint_file(const std::filesystem::path& path,
                                    DiagnosticSink& sink,
                                    const Options& options = {},
                                    const MetadataResolver& resolver = {},
                                    const SeverityResolver& sev_resolver = {},
                                    FileKind* kind_out = nullptr);

}  // namespace cube::lint
