// Static invariant checker over in-memory experiments (docs/LINT.md).
//
// The CUBE algebra is only defined over VALID experiments: well-formed
// metric/program/system forests, cross-dimension references that resolve,
// and a severity function confined to the metric x cnode x thread cross
// product (paper section 2, "Data Model").  Nothing in the construction
// API can violate most of these — the Metadata factories enforce them —
// but data arriving from files, foreign tools, or future builders can.
// These passes re-check every invariant explicitly and report violations
// as structured diagnostics instead of deep asserts or silent wrong
// answers.
//
// Layering: this header depends on the model only; file- and
// repository-level passes live in lint/file_lint.hpp and
// lint/repo_lint.hpp.
#pragma once

#include <functional>
#include <span>
#include <string>

#include "lint/diagnostics.hpp"
#include "model/experiment.hpp"
#include "model/metadata.hpp"

namespace cube::lint {

/// Switches for the in-memory passes.
struct Options {
  /// Scan severity values (non-finite, negative-in-original).  The scan is
  /// O(non-zeros); disable for guard paths that only need structure.
  bool check_values = true;
  /// Recompute the structural digest (clone + freeze) and compare it with
  /// the frozen one.  O(metadata size).
  bool check_digest = true;
  /// Cap on reported findings per value rule; further findings fold into
  /// one summary diagnostic.  0 = unlimited.
  std::size_t max_per_rule = 16;
};

/// Checks the three metadata forests: acyclicity, parent/child link
/// consistency, dense-index integrity, duplicate identities, unit
/// consistency, empty levels, dangling cross-dimension references, and
/// (optionally) the frozen digest.
void lint_metadata(const Metadata& metadata, DiagnosticSink& sink,
                   const Options& options = {});

/// lint_metadata plus the severity-domain and attribute rules of one
/// experiment.
void lint_experiment(const Experiment& experiment, DiagnosticSink& sink,
                     const Options& options = {});

/// Cross-experiment compatibility pre-checks: the operand conditions
/// difference/merge/mean assume.  Reports (does not throw) so callers can
/// present all conflicts at once before running an operator.
void lint_compatibility(std::span<const Experiment* const> operands,
                        DiagnosticSink& sink);

/// Runs lint_experiment and throws ValidationError if any error-level
/// finding fired; `context` names the data source (file, repository id)
/// in the exception message.
void require_valid(const Experiment& experiment, const std::string& context,
                   const Options& options = {});

/// A ready-made validator for ExperimentRepository::set_load_validator and
/// the query engine's validate_loads flag: calls require_valid.
[[nodiscard]] std::function<void(const Experiment&, const std::string&)>
load_validator(Options options = {});

}  // namespace cube::lint
