// Structured diagnostics for the static invariant checker (docs/LINT.md).
//
// Every lint rule reports through a Diagnostic: the rule id it fired
// (stable, dot-separated, e.g. "sev.out-of-range"), a severity level, a
// location path into the experiment or repository (e.g.
// `metric "time" / cnode #42`), the finding itself, and an optional fix
// hint.  A DiagnosticSink collects them; consumers render text or JSON,
// or turn error-level findings into a ValidationError (load guarding).
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace cube::lint {

/// How severe a finding is.  `Error` marks data the algebra is not defined
/// over; `Warning` marks data that is technically valid but will surprise
/// (shadowed regions, stale cache entries); `Note` is informational.
enum class Level { Note, Warning, Error };

/// Canonical lower-case rendering ("note", "warning", "error").
[[nodiscard]] std::string_view level_name(Level level) noexcept;

/// One finding of the checker.
struct Diagnostic {
  std::string rule;      ///< stable rule id, e.g. "forest.empty-process"
  Level level = Level::Error;
  std::string location;  ///< path into the data, e.g. `metric "time"`
  std::string message;   ///< what is wrong
  std::string hint;      ///< optional: how to fix it
};

/// Collector all rules report into.
///
/// The sink also carries the SUBJECT currently being linted (a file name,
/// a repository entry id); rules prepend it to their locations so one sink
/// can span a whole repository run.
class DiagnosticSink {
 public:
  /// Reports a finding; `location` is prefixed with the current subject.
  void report(std::string rule, Level level, std::string location,
              std::string message, std::string hint = {});

  void error(std::string rule, std::string location, std::string message,
             std::string hint = {}) {
    report(std::move(rule), Level::Error, std::move(location),
           std::move(message), std::move(hint));
  }
  void warning(std::string rule, std::string location, std::string message,
               std::string hint = {}) {
    report(std::move(rule), Level::Warning, std::move(location),
           std::move(message), std::move(hint));
  }
  void note(std::string rule, std::string location, std::string message,
            std::string hint = {}) {
    report(std::move(rule), Level::Note, std::move(location),
           std::move(message), std::move(hint));
  }

  /// Sets the subject prefix for subsequent reports ("" clears it).
  void set_subject(std::string subject) { subject_ = std::move(subject); }
  [[nodiscard]] const std::string& subject() const noexcept {
    return subject_;
  }

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const noexcept {
    return diagnostics_;
  }
  [[nodiscard]] bool empty() const noexcept { return diagnostics_.empty(); }
  [[nodiscard]] std::size_t errors() const noexcept { return errors_; }
  [[nodiscard]] std::size_t warnings() const noexcept { return warnings_; }
  [[nodiscard]] std::size_t notes() const noexcept { return notes_; }

  /// True if any finding reached `level`.
  [[nodiscard]] bool reached(Level level) const noexcept;

  /// Process exit code mirroring the max severity: 0 clean (or notes
  /// only), 1 warnings, 2 errors.
  [[nodiscard]] int exit_code() const noexcept;

  /// True if a diagnostic with this rule id was reported.
  [[nodiscard]] bool has_rule(std::string_view rule) const noexcept;

  /// Human-readable report, one line per finding plus a summary line.
  void write_text(std::ostream& out) const;
  /// Machine-readable report: one JSON object with a findings array and
  /// per-level counts.
  void write_json(std::ostream& out) const;

 private:
  std::vector<Diagnostic> diagnostics_;
  std::string subject_;
  std::size_t errors_ = 0;
  std::size_t warnings_ = 0;
  std::size_t notes_ = 0;
};

}  // namespace cube::lint
