#include "lint/diagnostics.hpp"

#include <ostream>

namespace cube::lint {

std::string_view level_name(Level level) noexcept {
  switch (level) {
    case Level::Note:
      return "note";
    case Level::Warning:
      return "warning";
    case Level::Error:
      return "error";
  }
  return "error";
}

void DiagnosticSink::report(std::string rule, Level level,
                            std::string location, std::string message,
                            std::string hint) {
  if (!subject_.empty()) {
    location = location.empty() ? subject_ : subject_ + " / " + location;
  }
  switch (level) {
    case Level::Note:
      ++notes_;
      break;
    case Level::Warning:
      ++warnings_;
      break;
    case Level::Error:
      ++errors_;
      break;
  }
  diagnostics_.push_back(Diagnostic{std::move(rule), level,
                                    std::move(location), std::move(message),
                                    std::move(hint)});
}

bool DiagnosticSink::reached(Level level) const noexcept {
  switch (level) {
    case Level::Note:
      return !diagnostics_.empty();
    case Level::Warning:
      return warnings_ > 0 || errors_ > 0;
    case Level::Error:
      return errors_ > 0;
  }
  return false;
}

int DiagnosticSink::exit_code() const noexcept {
  if (errors_ > 0) return 2;
  if (warnings_ > 0) return 1;
  return 0;
}

bool DiagnosticSink::has_rule(std::string_view rule) const noexcept {
  for (const Diagnostic& d : diagnostics_) {
    if (d.rule == rule) return true;
  }
  return false;
}

void DiagnosticSink::write_text(std::ostream& out) const {
  for (const Diagnostic& d : diagnostics_) {
    out << level_name(d.level) << " [" << d.rule << "]";
    if (!d.location.empty()) out << " " << d.location << ":";
    out << " " << d.message << "\n";
    if (!d.hint.empty()) out << "  hint: " << d.hint << "\n";
  }
  out << errors_ << " error(s), " << warnings_ << " warning(s), " << notes_
      << " note(s)\n";
}

namespace {

// Minimal JSON string escaping: the two mandatory characters plus control
// bytes (locations can embed user-supplied names).
void json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      case '\r':
        out << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          out << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

void DiagnosticSink::write_json(std::ostream& out) const {
  out << "{\n  \"errors\": " << errors_ << ",\n  \"warnings\": " << warnings_
      << ",\n  \"notes\": " << notes_ << ",\n  \"findings\": [";
  for (std::size_t i = 0; i < diagnostics_.size(); ++i) {
    const Diagnostic& d = diagnostics_[i];
    out << (i == 0 ? "" : ",") << "\n    {\"rule\": ";
    json_string(out, d.rule);
    out << ", \"level\": \"" << level_name(d.level) << "\", \"location\": ";
    json_string(out, d.location);
    out << ", \"message\": ";
    json_string(out, d.message);
    if (!d.hint.empty()) {
      out << ", \"hint\": ";
      json_string(out, d.hint);
    }
    out << "}";
  }
  out << "\n  ]\n}\n";
}

}  // namespace cube::lint
