#include "io/binary_format.hpp"

#include <cstring>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace cube {

namespace {

constexpr char kMagic[8] = {'C', 'U', 'B', 'E', 'B', 'I', 'N', '1'};

class Encoder {
 public:
  explicit Encoder(std::ostream& out) : out_(out) {}

  void u32(std::uint32_t v) {
    char buf[4];
    for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)));
    out_.write(buf, 4);
  }
  void i64(std::int64_t v) {
    char buf[8];
    const auto u = static_cast<std::uint64_t>(v);
    for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((u >> (8 * i)));
    out_.write(buf, 8);
  }
  void f64(double v) {
    static_assert(sizeof(double) == 8);
    char buf[8];
    std::memcpy(buf, &v, 8);
    out_.write(buf, 8);
  }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.write(s.data(), static_cast<std::streamsize>(s.size()));
  }

 private:
  std::ostream& out_;
};

class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  std::int64_t i64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return static_cast<std::int64_t>(v);
  }
  double f64() {
    need(8);
    double v = 0;
    std::memcpy(&v, data_.data() + pos_, 8);
    pos_ += 8;
    return v;
  }
  std::string str() {
    const std::uint32_t len = u32();
    need(len);
    std::string s(data_.substr(pos_, len));
    pos_ += len;
    return s;
  }
  [[nodiscard]] bool done() const { return pos_ == data_.size(); }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > data_.size()) {
      throw Error("truncated CUBE binary data");
    }
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace

void write_cube_binary(const Experiment& experiment, std::ostream& out) {
  const Metadata& md = experiment.metadata();
  out.write(kMagic, sizeof kMagic);
  Encoder e(out);

  e.u32(static_cast<std::uint32_t>(experiment.attributes().size()));
  for (const auto& [k, v] : experiment.attributes()) {
    e.str(k);
    e.str(v);
  }

  e.u32(static_cast<std::uint32_t>(md.metrics().size()));
  for (const auto& m : md.metrics()) {
    e.u32(m->parent() != nullptr
              ? static_cast<std::uint32_t>(m->parent()->index())
              : 0xFFFFFFFFu);
    e.str(m->unique_name());
    e.str(m->display_name());
    e.u32(static_cast<std::uint32_t>(m->unit()));
    e.str(m->description());
  }

  e.u32(static_cast<std::uint32_t>(md.regions().size()));
  for (const auto& r : md.regions()) {
    e.str(r->name());
    e.str(r->module());
    e.i64(r->begin_line());
    e.i64(r->end_line());
    e.str(r->description());
  }

  e.u32(static_cast<std::uint32_t>(md.callsites().size()));
  for (const auto& cs : md.callsites()) {
    e.u32(static_cast<std::uint32_t>(cs->callee().index()));
    e.str(cs->file());
    e.i64(cs->line());
  }

  e.u32(static_cast<std::uint32_t>(md.cnodes().size()));
  for (const auto& c : md.cnodes()) {
    e.u32(c->parent() != nullptr
              ? static_cast<std::uint32_t>(c->parent()->index())
              : 0xFFFFFFFFu);
    e.u32(static_cast<std::uint32_t>(c->callsite().index()));
  }

  e.u32(static_cast<std::uint32_t>(md.machines().size()));
  for (const auto& m : md.machines()) e.str(m->name());
  e.u32(static_cast<std::uint32_t>(md.nodes().size()));
  for (const auto& n : md.nodes()) {
    e.u32(static_cast<std::uint32_t>(n->machine().index()));
    e.str(n->name());
  }
  e.u32(static_cast<std::uint32_t>(md.processes().size()));
  for (const auto& p : md.processes()) {
    e.u32(static_cast<std::uint32_t>(p->node().index()));
    e.str(p->name());
    e.i64(p->rank());
    const auto& coords = p->coords();
    e.u32(coords ? static_cast<std::uint32_t>(coords->size()) : 0);
    if (coords) {
      for (const long c : *coords) e.i64(c);
    }
  }
  e.u32(static_cast<std::uint32_t>(md.threads().size()));
  for (const auto& t : md.threads()) {
    e.u32(static_cast<std::uint32_t>(t->process().index()));
    e.str(t->name());
    e.i64(t->thread_id());
  }

  // Non-zero severity triples.
  const SeverityStore& sev = experiment.severity();
  e.u32(static_cast<std::uint32_t>(sev.nonzero_count()));
  for (MetricIndex m = 0; m < md.num_metrics(); ++m) {
    for (CnodeIndex c = 0; c < md.num_cnodes(); ++c) {
      for (ThreadIndex t = 0; t < md.num_threads(); ++t) {
        const Severity v = sev.get(m, c, t);
        if (v != 0.0) {
          e.u32(static_cast<std::uint32_t>(m));
          e.u32(static_cast<std::uint32_t>(c));
          e.u32(static_cast<std::uint32_t>(t));
          e.f64(v);
        }
      }
    }
  }
}

void write_cube_binary_file(const Experiment& experiment,
                            const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot create file '" + path + "'");
  write_cube_binary(experiment, out);
  out.flush();
  if (!out) throw IoError("write to '" + path + "' failed");
}

std::string to_cube_binary(const Experiment& experiment) {
  std::ostringstream os(std::ios::binary);
  write_cube_binary(experiment, os);
  return os.str();
}

Experiment read_cube_binary(std::string_view data, StorageKind storage) {
  if (data.size() < sizeof kMagic ||
      std::memcmp(data.data(), kMagic, sizeof kMagic) != 0) {
    throw Error("not a CUBE binary stream (bad magic)");
  }
  Decoder d(data.substr(sizeof kMagic));

  const std::uint32_t num_attrs = d.u32();
  std::vector<std::pair<std::string, std::string>> attrs;
  attrs.reserve(num_attrs);
  for (std::uint32_t i = 0; i < num_attrs; ++i) {
    std::string k = d.str();
    std::string v = d.str();
    attrs.emplace_back(std::move(k), std::move(v));
  }

  auto md = std::make_unique<Metadata>();

  const std::uint32_t num_metrics = d.u32();
  for (std::uint32_t i = 0; i < num_metrics; ++i) {
    const std::uint32_t parent = d.u32();
    std::string uniq = d.str();
    std::string disp = d.str();
    const auto unit = static_cast<Unit>(d.u32());
    std::string descr = d.str();
    const Metric* parent_ptr =
        parent == 0xFFFFFFFFu ? nullptr : md->metrics().at(parent).get();
    md->add_metric(parent_ptr, std::move(uniq), std::move(disp), unit,
                   std::move(descr));
  }

  const std::uint32_t num_regions = d.u32();
  for (std::uint32_t i = 0; i < num_regions; ++i) {
    std::string name = d.str();
    std::string mod = d.str();
    const long begin = static_cast<long>(d.i64());
    const long end = static_cast<long>(d.i64());
    std::string descr = d.str();
    md->add_region(std::move(name), std::move(mod), begin, end,
                   std::move(descr));
  }

  const std::uint32_t num_callsites = d.u32();
  for (std::uint32_t i = 0; i < num_callsites; ++i) {
    const std::uint32_t callee = d.u32();
    std::string file = d.str();
    const long line = static_cast<long>(d.i64());
    md->add_callsite(*md->regions().at(callee), std::move(file), line);
  }

  const std::uint32_t num_cnodes = d.u32();
  for (std::uint32_t i = 0; i < num_cnodes; ++i) {
    const std::uint32_t parent = d.u32();
    const std::uint32_t csite = d.u32();
    const Cnode* parent_ptr =
        parent == 0xFFFFFFFFu ? nullptr : md->cnodes().at(parent).get();
    md->add_cnode(parent_ptr, *md->callsites().at(csite));
  }

  const std::uint32_t num_machines = d.u32();
  for (std::uint32_t i = 0; i < num_machines; ++i) {
    md->add_machine(d.str());
  }
  const std::uint32_t num_nodes = d.u32();
  for (std::uint32_t i = 0; i < num_nodes; ++i) {
    const std::uint32_t machine = d.u32();
    md->add_node(*md->machines().at(machine), d.str());
  }
  const std::uint32_t num_processes = d.u32();
  for (std::uint32_t i = 0; i < num_processes; ++i) {
    const std::uint32_t node = d.u32();
    std::string name = d.str();
    const long rank = static_cast<long>(d.i64());
    Process& p = md->add_process(*md->nodes().at(node), std::move(name), rank);
    const std::uint32_t num_coords = d.u32();
    if (num_coords > 0) {
      std::vector<long> coords;
      coords.reserve(num_coords);
      for (std::uint32_t k = 0; k < num_coords; ++k) {
        coords.push_back(static_cast<long>(d.i64()));
      }
      p.set_coords(std::move(coords));
    }
  }
  const std::uint32_t num_threads = d.u32();
  for (std::uint32_t i = 0; i < num_threads; ++i) {
    const std::uint32_t process = d.u32();
    std::string name = d.str();
    const long tid = static_cast<long>(d.i64());
    md->add_thread(*md->processes().at(process), std::move(name), tid);
  }

  md->validate();
  Experiment experiment(std::move(md), storage);
  for (auto& [k, v] : attrs) {
    experiment.set_attribute(std::move(k), std::move(v));
  }

  const std::uint32_t num_values = d.u32();
  for (std::uint32_t i = 0; i < num_values; ++i) {
    const std::uint32_t m = d.u32();
    const std::uint32_t c = d.u32();
    const std::uint32_t t = d.u32();
    const double v = d.f64();
    experiment.severity().set(m, c, t, v);
  }
  if (!d.done()) throw Error("trailing bytes after CUBE binary stream");
  return experiment;
}

Experiment read_cube_binary_file(const std::string& path,
                                 StorageKind storage) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return read_cube_binary(buffer.str(), storage);
}

}  // namespace cube
