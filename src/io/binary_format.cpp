#include "io/binary_format.hpp"

#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "common/digest.hpp"
#include "common/error.hpp"
#include "io/binary_codec.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace cube {

namespace {

obs::Counter& bytes_read_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "io.bin.bytes_read", obs::SampleUnit::Bytes);
  return c;
}

obs::Counter& sev_bytes_read_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "io.sev.bytes_read", obs::SampleUnit::Bytes);
  return c;
}

obs::Counter& bytes_written_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "io.bin.bytes_written", obs::SampleUnit::Bytes);
  return c;
}

/// Adds the stream-position delta across `write` to io.bin.bytes_written
/// (string streams and files both support tellp; -1 positions are skipped).
template <typename WriteFn>
void write_counted(std::ostream& out, const WriteFn& write) {
  const auto before = out.tellp();
  write();
  const auto after = out.tellp();
  if (before != std::streampos(-1) && after != std::streampos(-1)) {
    bytes_written_counter().add(static_cast<std::uint64_t>(after - before));
  }
}

constexpr char kMagic[8] = {'C', 'U', 'B', 'E', 'B', 'I', 'N', '1'};
// By-reference variant: metadata is NOT inline; the stream embeds the
// structural digest of a metadata blob instead (see meta_format.hpp).
constexpr char kRefMagic[8] = {'C', 'U', 'B', 'E', 'B', 'I', 'N', '2'};

void encode_attributes(detail::BinaryEncoder& e, const Experiment& exp) {
  e.u32(static_cast<std::uint32_t>(exp.attributes().size()));
  for (const auto& [k, v] : exp.attributes()) {
    e.str(k);
    e.str(v);
  }
}

// Severity encoding runs over the non-virtual bulk layer
// (docs/STORAGE.md): dense stores stream their contiguous cell span,
// sparse stores their key-sorted non-zeros — which IS ascending (m, c, t)
// order, so the bytes are identical to the per-cell triple loop this
// replaces (and to what decode_severity expects).
void encode_severity(detail::BinaryEncoder& e, const Experiment& exp) {
  const SeverityStore& sev = exp.severity();
  const std::size_t cnodes = sev.num_cnodes();
  const std::size_t threads = sev.num_threads();
  const auto entry = [&](std::uint64_t cell, Severity v) {
    const std::uint64_t rest = cell % (cnodes * threads);
    e.u32(static_cast<std::uint32_t>(cell / (cnodes * threads)));
    e.u32(static_cast<std::uint32_t>(rest / threads));
    e.u32(static_cast<std::uint32_t>(rest % threads));
    e.f64(v);
  };
  e.u32(static_cast<std::uint32_t>(sev.nonzero_count()));
  if (sev.kind() == StorageKind::Dense) {
    const auto cells = static_cast<const DenseSeverity&>(sev).cells();
    for (std::uint64_t cell = 0; cell < cells.size(); ++cell) {
      if (cells[cell] != 0.0) entry(cell, cells[cell]);
    }
    return;
  }
  for (const auto& [cell, v] :
       static_cast<const SparseSeverity&>(sev).sorted_cells()) {
    if (v != 0.0) entry(cell, v);
  }
}

std::vector<std::pair<std::string, std::string>> decode_attributes(
    detail::BinaryDecoder& d) {
  const std::uint32_t num_attrs = d.u32();
  std::vector<std::pair<std::string, std::string>> attrs;
  attrs.reserve(num_attrs);
  for (std::uint32_t i = 0; i < num_attrs; ++i) {
    std::string k = d.str();
    std::string v = d.str();
    attrs.emplace_back(std::move(k), std::move(v));
  }
  return attrs;
}

void decode_severity(detail::BinaryDecoder& d, Experiment& experiment) {
  const Metadata& md = experiment.metadata();
  const std::uint32_t num_values = d.u32();
  // Each triple is 3 u32 indices + 1 f64 value on the wire.
  sev_bytes_read_counter().add(static_cast<std::uint64_t>(num_values) *
                               (3 * sizeof(std::uint32_t) + sizeof(double)));
  for (std::uint32_t i = 0; i < num_values; ++i) {
    const std::uint32_t m = d.u32();
    const std::uint32_t c = d.u32();
    const std::uint32_t t = d.u32();
    const double v = d.f64();
    if (m >= md.num_metrics() || c >= md.num_cnodes() ||
        t >= md.num_threads()) {
      throw CheckError(
          "sev.out-of-range",
          "metric #" + std::to_string(m) + " / cnode #" + std::to_string(c) +
              " / thread #" + std::to_string(t),
          "severity triple #" + std::to_string(i) +
              " lies outside the metric x cnode x thread cross product (" +
              std::to_string(md.num_metrics()) + " x " +
              std::to_string(md.num_cnodes()) + " x " +
              std::to_string(md.num_threads()) + ")");
    }
    experiment.severity().set(m, c, t, v);
  }
  if (!d.done()) {
    throw CheckError("file.trailing-bytes", "",
                     "trailing bytes after CUBE binary stream");
  }
}

}  // namespace

void write_cube_binary(const Experiment& experiment, std::ostream& out) {
  OBS_SPAN("io.bin.write");
  write_counted(out, [&] {
    out.write(kMagic, sizeof kMagic);
    detail::BinaryEncoder e(out);
    encode_attributes(e, experiment);
    detail::encode_metadata(e, experiment.metadata());
    encode_severity(e, experiment);
  });
}

void write_cube_binary_ref(const Experiment& experiment, std::ostream& out) {
  OBS_SPAN("io.bin.write");
  write_counted(out, [&] {
    out.write(kRefMagic, sizeof kRefMagic);
    detail::BinaryEncoder e(out);
    encode_attributes(e, experiment);
    e.u64(experiment.metadata().digest());
    encode_severity(e, experiment);
  });
}

void write_cube_binary_file(const Experiment& experiment,
                            const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot create file '" + path + "'");
  write_cube_binary(experiment, out);
  out.flush();
  if (!out) throw IoError("write to '" + path + "' failed");
}

void write_cube_binary_ref_file(const Experiment& experiment,
                                const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot create file '" + path + "'");
  write_cube_binary_ref(experiment, out);
  out.flush();
  if (!out) throw IoError("write to '" + path + "' failed");
}

std::string to_cube_binary(const Experiment& experiment) {
  std::ostringstream os(std::ios::binary);
  write_cube_binary(experiment, os);
  return os.str();
}

std::string to_cube_binary_ref(const Experiment& experiment) {
  std::ostringstream os(std::ios::binary);
  write_cube_binary_ref(experiment, os);
  return os.str();
}

Experiment read_cube_binary(std::string_view data, StorageKind storage,
                            const MetadataResolver& resolver) {
  OBS_SPAN("io.bin.read");
  bytes_read_counter().add(data.size());
  const bool by_ref = data.size() >= sizeof kRefMagic &&
                      std::memcmp(data.data(), kRefMagic,
                                  sizeof kRefMagic) == 0;
  if (!by_ref && (data.size() < sizeof kMagic ||
                  std::memcmp(data.data(), kMagic, sizeof kMagic) != 0)) {
    throw CheckError("file.bad-magic", "",
                     "not a CUBE binary stream (bad magic)");
  }
  detail::BinaryDecoder d(data.substr(sizeof kMagic));
  auto attrs = decode_attributes(d);

  Experiment experiment = [&]() -> Experiment {
    if (by_ref) {
      const std::uint64_t digest = d.u64();
      if (!resolver) {
        throw Error(
            "by-reference CUBE binary stream requires a metadata resolver "
            "(metadata digest " +
            digest_hex(digest) + ")");
      }
      auto md = resolver(digest);
      if (md == nullptr) {
        throw CheckError(
            "meta.unresolved-ref", "",
            "no metadata blob resolves digest " + digest_hex(digest));
      }
      return Experiment(std::move(md), storage);
    }
    return Experiment(detail::decode_metadata(d), storage);
  }();

  for (auto& [k, v] : attrs) {
    experiment.set_attribute(std::move(k), std::move(v));
  }
  decode_severity(d, experiment);
  return experiment;
}

Experiment read_cube_binary_file(const std::string& path, StorageKind storage,
                                 const MetadataResolver& resolver) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return read_cube_binary(buffer.str(), storage, resolver);
}

}  // namespace cube
