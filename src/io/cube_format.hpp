// The CUBE XML experiment format: serialization of a full experiment
// (metadata + severity function + attributes) to and from XML.
//
// Layout (modeled on the format the paper describes: a metadata part and
// the severity values stored as a three-dimensional array with one
// dimension each for metric, call path, and thread):
//
//   <cube version="1.0">
//     <attr key="..." value="..."/> ...
//     <metrics>   nested <metric id> with <uniq_name>/<disp_name>/<uom>/
//                 <descr> children </metrics>
//     <program>   flat <region id name mod begin end>, <csite id file line
//                 callee>, nested <cnode id csite> </program>
//     <system>    nested <machine>/<node>/<process rank [coords]>/<thread
//                 tid> </system>
//     <severity>  <matrix metric="i"> <row cnode="j"> t0 t1 t2 ...
//                 </row> </matrix>; all-zero rows and empty matrices are
//                 omitted </severity>
//   </cube>
//
// Identifiers in the file are the dense in-memory indices; the reader
// nevertheless accepts arbitrary ids and remaps them.
//
// Version 1.1 adds the by-reference form: <metaref digest="..."/> replaces
// the three metadata sections and points at a metadata blob
// (meta_format.hpp); severity ids are then the dense indices of the
// referenced metadata.  Reading one requires a MetadataResolver.
//
// Version 1.2 adds the columnar form: a <sevref digest="..." storage=.../>
// element replaces the <severity> section and points at a CUBESEV1
// severity blob (severity_format.hpp); the whole document is then a tiny
// envelope (attributes + two digests) and reading one requires a
// SeverityResolver as well — the repository's resolver mmaps the blob, so
// loads of columnar experiments are file-backed and stream-capable.
#pragma once

#include <iosfwd>
#include <string>

#include "io/meta_format.hpp"
#include "io/severity_format.hpp"
#include "model/experiment.hpp"

namespace cube {

/// Writes `experiment` as CUBE XML (inline metadata).
void write_cube_xml(const Experiment& experiment, std::ostream& out);
/// Writes to a file path; throws IoError if the file cannot be created.
void write_cube_xml_file(const Experiment& experiment,
                         const std::string& path);
/// Convenience: returns the XML document as a string.
[[nodiscard]] std::string to_cube_xml(const Experiment& experiment);

/// Writes the by-reference form (version 1.1): attributes + <metaref> +
/// severity.  The referenced metadata blob must be stored separately (the
/// repository does this).
void write_cube_xml_ref(const Experiment& experiment, std::ostream& out);
void write_cube_xml_ref_file(const Experiment& experiment,
                             const std::string& path);
[[nodiscard]] std::string to_cube_xml_ref(const Experiment& experiment);

/// Writes the columnar envelope (version 1.2): attributes + <metaref> +
/// <sevref>.  Both referenced blobs (metadata and CUBESEV1 severity,
/// whose digest the caller passes) must be stored separately — the
/// repository does this for RepoFormat::Columnar entries.
void write_cube_xml_sev_ref(const Experiment& experiment,
                            std::uint64_t sev_digest, std::ostream& out);
void write_cube_xml_sev_ref_file(const Experiment& experiment,
                                 std::uint64_t sev_digest,
                                 const std::string& path);
[[nodiscard]] std::string to_cube_xml_sev_ref(const Experiment& experiment,
                                              std::uint64_t sev_digest);

/// Parses a CUBE XML document of any form.  Throws ParseError /
/// ValidationError on malformed input (including a by-reference document
/// without a resolver); the returned experiment has been validate()d.
/// Columnar documents additionally require `sev_resolver`; the store it
/// returns decides the storage kind, overriding `storage`.
[[nodiscard]] Experiment read_cube_xml(
    std::string_view xml, StorageKind storage = StorageKind::Dense,
    const MetadataResolver& resolver = {},
    const SeverityResolver& sev_resolver = {});
/// Reads from a file path; throws IoError if the file cannot be opened.
[[nodiscard]] Experiment read_cube_xml_file(
    const std::string& path, StorageKind storage = StorageKind::Dense,
    const MetadataResolver& resolver = {},
    const SeverityResolver& sev_resolver = {});

/// Reads an experiment file of either supported format, detected by
/// content (binary magic first, XML otherwise).  The command-line tools
/// use this so .cube and .cubx files mix freely.  By-reference files are
/// resolved through the given resolvers when supplied, else against the
/// meta/ and sev/ directories of the enclosing repository — the file's
/// own directory, or (for the sharded exp/ab/ layout) the nearest
/// ancestor that looks like a repository root.
[[nodiscard]] Experiment read_experiment_file(
    const std::string& path, StorageKind storage = StorageKind::Dense,
    const MetadataResolver& resolver = {},
    const SeverityResolver& sev_resolver = {});

}  // namespace cube
