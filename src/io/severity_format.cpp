#include "io/severity_format.hpp"

#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#include "common/digest.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace cube {

namespace {

obs::Counter& sev_bytes_read_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "io.sev.bytes_read", obs::SampleUnit::Bytes);
  return c;
}

constexpr std::string_view kMagic = "CUBESEV1";
constexpr std::uint64_t kKindDense = 0;
constexpr std::uint64_t kKindSparse = 1;
constexpr std::size_t kHeaderBytes = 56;

[[nodiscard]] std::string_view bytes_of(const void* data, std::size_t n) {
  return std::string_view(static_cast<const char*>(data), n);
}

void put_u64(std::ostream& out, std::uint64_t v) {
  // Little-endian, like the CUBEBIN/CUBEMET codecs.
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
  out.write(buf, 8);
}

struct SparseColumns {
  std::vector<std::uint64_t> keys;
  std::vector<Severity> values;
};

[[nodiscard]] SparseColumns sparse_columns(const SparseSeverity& store) {
  SparseColumns cols;
  const auto cells = store.sorted_cells();
  cols.keys.reserve(cells.size());
  cols.values.reserve(cells.size());
  for (const auto& [k, v] : cells) {
    if (v == 0.0) continue;
    cols.keys.push_back(k);
    cols.values.push_back(v);
  }
  return cols;
}

struct Header {
  std::uint64_t kind = 0;
  std::uint64_t metrics = 0;
  std::uint64_t cnodes = 0;
  std::uint64_t threads = 0;
  std::uint64_t entries = 0;
  std::uint64_t digest = 0;
};

[[nodiscard]] Header parse_header(std::string_view data,
                                  const std::string& what) {
  if (data.size() < kHeaderBytes || data.substr(0, kMagic.size()) != kMagic) {
    throw Error(what + ": not a CUBESEV1 severity blob");
  }
  Header h;
  const auto u64_at = [&](std::size_t off) {
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
      v = (v << 8) | static_cast<unsigned char>(data[off + i]);
    }
    return v;
  };
  h.kind = u64_at(8);
  h.metrics = u64_at(16);
  h.cnodes = u64_at(24);
  h.threads = u64_at(32);
  h.entries = u64_at(40);
  h.digest = u64_at(48);
  if (h.kind != kKindDense && h.kind != kKindSparse) {
    throw Error(what + ": unknown severity blob kind " +
                std::to_string(h.kind));
  }
  // All size arithmetic below must be overflow-checked: a corrupt or
  // crafted header with huge counts would otherwise wrap the products,
  // sneak past the exact-size check, and hand out-of-bounds spans to the
  // mmap path.
  const auto checked_mul = [&](std::uint64_t a, std::uint64_t b) {
    if (b != 0 && a > std::numeric_limits<std::uint64_t>::max() / b) {
      throw Error(what + ": severity blob geometry overflows");
    }
    return a * b;
  };
  const std::uint64_t cells =
      checked_mul(checked_mul(h.metrics, h.cnodes), h.threads);
  const std::uint64_t record_size =
      h.kind == kKindDense ? sizeof(Severity)
                           : sizeof(std::uint64_t) + sizeof(Severity);
  if (h.entries > (data.size() - kHeaderBytes) / record_size) {
    throw Error(what + ": severity blob entry count " +
                std::to_string(h.entries) + " exceeds the blob's " +
                std::to_string(data.size()) + " bytes");
  }
  if (h.kind == kKindDense && h.entries != cells) {
    throw Error(what + ": dense severity blob entry count " +
                std::to_string(h.entries) + " does not match geometry (" +
                std::to_string(cells) + " cells)");
  }
  if (h.kind == kKindSparse && h.entries > cells) {
    throw Error(what + ": sparse severity blob has more entries than cells");
  }
  const std::size_t payload =
      h.kind == kKindDense
          ? static_cast<std::size_t>(h.entries) * sizeof(Severity)
          : static_cast<std::size_t>(h.entries) *
                (sizeof(std::uint64_t) + sizeof(Severity));
  if (data.size() != kHeaderBytes + payload) {
    throw Error(what + ": severity blob is " + std::to_string(data.size()) +
                " bytes, header implies " +
                std::to_string(kHeaderBytes + payload));
  }
  return h;
}

[[nodiscard]] std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw Error("cannot open " + path.string());
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

}  // namespace

std::string sev_blob_name(std::uint64_t digest) {
  return digest_hex(digest) + ".sev";
}

SeverityResolver directory_severity_resolver(std::filesystem::path directory,
                                             bool map) {
  return [dir = std::move(directory), map](
             std::uint64_t digest,
             StorageKind /*kind*/) -> std::unique_ptr<SeverityStore> {
    const std::string name = sev_blob_name(digest);
    std::error_code ec;
    std::filesystem::path path = dir / "sev" / name.substr(0, 2) / name;
    if (!std::filesystem::exists(path, ec)) {
      path = dir / "sev" / name;
      if (!std::filesystem::exists(path, ec)) return nullptr;
    }
    return map ? map_cube_sev_file(path) : read_cube_sev_file(path);
  };
}

bool is_cube_sev(std::string_view data) noexcept {
  return data.size() >= kMagic.size() &&
         data.substr(0, kMagic.size()) == kMagic;
}

void write_cube_sev(const SeverityStore& store, std::ostream& out) {
  const std::uint64_t kind =
      store.kind() == StorageKind::Dense ? kKindDense : kKindSparse;
  out.write(kMagic.data(), static_cast<std::streamsize>(kMagic.size()));
  put_u64(out, kind);
  put_u64(out, store.num_metrics());
  put_u64(out, store.num_cnodes());
  put_u64(out, store.num_threads());
  if (kind == kKindDense) {
    const auto& dense = static_cast<const DenseSeverity&>(store);
    const auto cells = dense.cells();
    put_u64(out, cells.size());
    Fnv1a digest;
    digest.update(bytes_of(cells.data(), cells.size() * sizeof(Severity)));
    put_u64(out, digest.value());
    out.write(reinterpret_cast<const char*>(cells.data()),
              static_cast<std::streamsize>(cells.size() * sizeof(Severity)));
  } else {
    const auto& sparse = static_cast<const SparseSeverity&>(store);
    const SparseColumns cols = sparse_columns(sparse);
    put_u64(out, cols.keys.size());
    Fnv1a digest;
    digest.update(
        bytes_of(cols.keys.data(), cols.keys.size() * sizeof(std::uint64_t)));
    digest.update(
        bytes_of(cols.values.data(), cols.values.size() * sizeof(Severity)));
    put_u64(out, digest.value());
    out.write(reinterpret_cast<const char*>(cols.keys.data()),
              static_cast<std::streamsize>(cols.keys.size() *
                                           sizeof(std::uint64_t)));
    out.write(reinterpret_cast<const char*>(cols.values.data()),
              static_cast<std::streamsize>(cols.values.size() *
                                           sizeof(Severity)));
  }
  if (!out) {
    throw Error("severity blob write failed");
  }
}

std::string to_cube_sev(const SeverityStore& store) {
  std::ostringstream out(std::ios::binary);
  write_cube_sev(store, out);
  return std::move(out).str();
}

std::unique_ptr<SeverityStore> read_cube_sev(std::string_view data) {
  const Header h = parse_header(data, "severity blob");
  const std::string_view payload = data.substr(kHeaderBytes);
  sev_bytes_read_counter().add(payload.size());
  if (fnv1a(payload) != h.digest) {
    throw Error("severity blob payload digest mismatch (corrupt blob)");
  }
  if (h.kind == kKindDense) {
    auto store = std::make_unique<DenseSeverity>(h.metrics, h.cnodes,
                                                 h.threads);
    auto cells = store->cells_mut(0, store->num_cells());
    std::memcpy(cells.data(), payload.data(),
                cells.size() * sizeof(Severity));
    return store;
  }
  auto store =
      std::make_unique<SparseSeverity>(h.metrics, h.cnodes, h.threads);
  std::vector<std::pair<std::uint64_t, Severity>> entries(h.entries);
  const char* keys = payload.data();
  const char* values = keys + h.entries * sizeof(std::uint64_t);
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < h.entries; ++i) {
    std::uint64_t k = 0;
    Severity v = 0.0;
    std::memcpy(&k, keys + i * sizeof(std::uint64_t), sizeof(k));
    std::memcpy(&v, values + i * sizeof(Severity), sizeof(v));
    if (i > 0 && k <= prev) {
      throw Error("severity blob sparse keys out of order");
    }
    prev = k;
    entries[i] = {k, v};
  }
  store->set_cells(entries);
  return store;
}

std::unique_ptr<SeverityStore> read_cube_sev_file(
    const std::filesystem::path& path) {
  try {
    return read_cube_sev(read_file(path));
  } catch (const Error& e) {
    throw Error(path.string() + ": " + e.what());
  }
}

std::unique_ptr<SeverityStore> map_cube_sev_file(
    const std::filesystem::path& path) {
  auto mapping = std::make_shared<MappedFile>(path);
  const std::string_view data = bytes_of(mapping->data(), mapping->size());
  const Header h = parse_header(data, path.string());
  // The mapping makes every payload byte loadable; count them all, like
  // the owned reader — the analyzer's zero-severity-bytes proof treats a
  // map as a load (pages WILL fault under the reduction).
  sev_bytes_read_counter().add(data.size() - kHeaderBytes);
  const std::byte* payload = mapping->data() + kHeaderBytes;
  if (h.kind == kKindDense) {
    const std::span<const Severity> cells(
        reinterpret_cast<const Severity*>(payload),
        static_cast<std::size_t>(h.entries));
    return std::make_unique<DenseSeverity>(h.metrics, h.cnodes, h.threads,
                                           cells, std::move(mapping));
  }
  const std::span<const std::uint64_t> keys(
      reinterpret_cast<const std::uint64_t*>(payload),
      static_cast<std::size_t>(h.entries));
  const std::span<const Severity> values(
      reinterpret_cast<const Severity*>(payload +
                                        h.entries * sizeof(std::uint64_t)),
      static_cast<std::size_t>(h.entries));
  return std::make_unique<SparseSeverity>(h.metrics, h.cnodes, h.threads,
                                          keys, values, std::move(mapping));
}

SevBlobStat stat_cube_sev_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw Error("cannot open " + path.string());
  }
  char buf[kHeaderBytes];
  in.read(buf, static_cast<std::streamsize>(kHeaderBytes));
  if (in.gcount() != static_cast<std::streamsize>(kHeaderBytes)) {
    throw Error(path.string() + ": not a CUBESEV1 severity blob");
  }
  std::error_code ec;
  const std::uintmax_t file_size = std::filesystem::file_size(path, ec);
  if (ec) {
    throw Error("cannot stat " + path.string());
  }
  const std::string_view header(buf, kHeaderBytes);
  if (header.substr(0, kMagic.size()) != kMagic) {
    throw Error(path.string() + ": not a CUBESEV1 severity blob");
  }
  const auto u64_at = [&](std::size_t off) {
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
      v = (v << 8) | static_cast<unsigned char>(buf[off + i]);
    }
    return v;
  };
  SevBlobStat stat;
  const std::uint64_t kind = u64_at(8);
  stat.metrics = u64_at(16);
  stat.cnodes = u64_at(24);
  stat.threads = u64_at(32);
  stat.entries = u64_at(40);
  if (kind != kKindDense && kind != kKindSparse) {
    throw Error(path.string() + ": unknown severity blob kind " +
                std::to_string(kind));
  }
  stat.kind = kind == kKindDense ? StorageKind::Dense : StorageKind::Sparse;
  const auto checked_mul = [&](std::uint64_t a, std::uint64_t b) {
    if (b != 0 && a > std::numeric_limits<std::uint64_t>::max() / b) {
      throw Error(path.string() + ": severity blob geometry overflows");
    }
    return a * b;
  };
  const std::uint64_t cells =
      checked_mul(checked_mul(stat.metrics, stat.cnodes), stat.threads);
  const std::uint64_t record_size =
      kind == kKindDense ? sizeof(Severity)
                         : sizeof(std::uint64_t) + sizeof(Severity);
  if (kind == kKindDense && stat.entries != cells) {
    throw Error(path.string() + ": dense severity blob entry count " +
                std::to_string(stat.entries) +
                " does not match geometry (" + std::to_string(cells) +
                " cells)");
  }
  if (kind == kKindSparse && stat.entries > cells) {
    throw Error(path.string() +
                ": sparse severity blob has more entries than cells");
  }
  stat.payload_bytes = checked_mul(stat.entries, record_size);
  if (static_cast<std::uint64_t>(file_size) !=
      kHeaderBytes + stat.payload_bytes) {
    throw Error(path.string() + ": severity blob is " +
                std::to_string(file_size) + " bytes, header implies " +
                std::to_string(kHeaderBytes + stat.payload_bytes));
  }
  return stat;
}

void check_cube_sev_file(const std::filesystem::path& path) {
  const std::string data = read_file(path);
  const Header h = parse_header(data, path.string());
  const std::string_view payload =
      std::string_view(data).substr(kHeaderBytes);
  if (fnv1a(payload) != h.digest) {
    throw Error(path.string() + ": severity blob payload digest mismatch");
  }
  if (h.kind == kKindSparse) {
    const char* keys = payload.data();
    std::uint64_t prev = 0;
    for (std::uint64_t i = 0; i < h.entries; ++i) {
      std::uint64_t k = 0;
      std::memcpy(&k, keys + i * sizeof(std::uint64_t), sizeof(k));
      if (i > 0 && k <= prev) {
        throw Error(path.string() + ": severity blob sparse keys out of order");
      }
      prev = k;
    }
  }
}

}  // namespace cube
