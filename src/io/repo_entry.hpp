// The repository index entry: one stored experiment's id, file, format,
// blob references, and queryable attributes.  Shared by the repository
// (repository.hpp) and the segmented index codec (index_segments.hpp).
#pragma once

#include <map>
#include <string>
#include <string_view>

namespace cube {

/// On-disk encoding of a stored experiment.
enum class RepoFormat {
  Xml,      ///< by-reference XML (v1.1), severity inline
  Binary,   ///< CUBEBIN2, severity inline
  Columnar  ///< XML envelope (v1.2) + mmap-friendly CUBESEV1 severity blob
};

/// One index entry.
struct RepoEntry {
  std::string id;        ///< unique within the repository
  std::string file;      ///< file name relative to the repository root
  RepoFormat format = RepoFormat::Xml;
  /// Hex digest of the referenced metadata blob; empty for a legacy entry
  /// whose file carries its metadata inline.
  std::string meta;
  /// Hex digest of the referenced CUBESEV1 severity blob; empty unless
  /// the entry is columnar.
  std::string sev;
  /// The experiment's attributes at store time (name, kind, provenance,
  /// plus anything the producing tool attached) — the queryable part.
  std::map<std::string, std::string> attributes;
};

/// Index-file spelling of a format ("xml" / "binary" / "columnar").
[[nodiscard]] constexpr const char* repo_format_name(RepoFormat f) noexcept {
  switch (f) {
    case RepoFormat::Binary:
      return "binary";
    case RepoFormat::Columnar:
      return "columnar";
    case RepoFormat::Xml:
      break;
  }
  return "xml";
}

/// Inverse of repo_format_name; unknown spellings parse as Xml (the
/// tolerant default the legacy index reader always used).
[[nodiscard]] inline RepoFormat parse_repo_format(std::string_view name) {
  if (name == "binary") return RepoFormat::Binary;
  if (name == "columnar") return RepoFormat::Columnar;
  return RepoFormat::Xml;
}

}  // namespace cube
