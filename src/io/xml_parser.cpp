#include "io/xml_parser.hpp"

#include <cctype>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace cube {

std::optional<std::string_view> XmlNode::attr(std::string_view name) const {
  for (const auto& [k, v] : attributes) {
    if (k == name) return std::string_view(v);
  }
  return std::nullopt;
}

std::string_view XmlNode::required_attr(std::string_view name) const {
  const auto v = attr(name);
  if (!v) {
    throw Error("element <" + this->name + "> lacks required attribute '" +
                std::string(name) + "'");
  }
  return *v;
}

const XmlNode* XmlNode::child(std::string_view name) const {
  for (const auto& c : children) {
    if (c->name == name) return c.get();
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::children_named(
    std::string_view name) const {
  std::vector<const XmlNode*> out;
  for (const auto& c : children) {
    if (c->name == name) out.push_back(c.get());
  }
  return out;
}

std::string XmlNode::child_text(std::string_view name) const {
  const XmlNode* c = child(name);
  return c != nullptr ? c->text : std::string();
}

namespace {

/// Single-pass recursive-descent parser over the input buffer.
class XmlParser {
 public:
  explicit XmlParser(std::string_view input) : input_(input) {}

  std::unique_ptr<XmlNode> parse() {
    skip_prolog();
    auto root = parse_element();
    skip_misc();
    if (pos_ != input_.size()) {
      fail("content after document element");
    }
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError(what, line_, column());
  }

  [[nodiscard]] std::size_t column() const {
    return pos_ - line_start_ + 1;
  }

  [[nodiscard]] bool eof() const { return pos_ >= input_.size(); }

  [[nodiscard]] char peek() const {
    if (eof()) fail("unexpected end of input");
    return input_[pos_];
  }

  char advance() {
    const char c = peek();
    ++pos_;
    if (c == '\n') {
      ++line_;
      line_start_ = pos_;
    }
    return c;
  }

  [[nodiscard]] bool starts_with(std::string_view s) const {
    return input_.substr(pos_, s.size()) == s;
  }

  void expect(std::string_view s) {
    if (!starts_with(s)) {
      fail("expected '" + std::string(s) + "'");
    }
    for (std::size_t i = 0; i < s.size(); ++i) advance();
  }

  void skip_ws() {
    while (!eof() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      advance();
    }
  }

  static bool is_name_start(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':';
  }
  static bool is_name_char(char c) {
    return is_name_start(c) || std::isdigit(static_cast<unsigned char>(c)) ||
           c == '-' || c == '.';
  }

  std::string parse_name() {
    if (eof() || !is_name_start(peek())) fail("expected a name");
    std::string name;
    while (!eof() && is_name_char(peek())) {
      name.push_back(advance());
    }
    return name;
  }

  void skip_comment() {
    expect("<!--");
    while (!starts_with("-->")) {
      if (eof()) fail("unterminated comment");
      advance();
    }
    expect("-->");
  }

  void skip_pi() {
    expect("<?");
    while (!starts_with("?>")) {
      if (eof()) fail("unterminated processing instruction");
      advance();
    }
    expect("?>");
  }

  void skip_misc() {
    while (true) {
      skip_ws();
      if (starts_with("<!--")) {
        skip_comment();
      } else if (starts_with("<?")) {
        skip_pi();
      } else {
        return;
      }
    }
  }

  void skip_prolog() {
    skip_misc();
    // A <!DOCTYPE ...> without internal subset is tolerated and skipped.
    if (starts_with("<!DOCTYPE")) {
      while (!eof() && peek() != '>') advance();
      expect(">");
      skip_misc();
    }
  }

  std::string parse_attr_value() {
    const char quote = peek();
    if (quote != '"' && quote != '\'') fail("expected quoted attribute value");
    advance();
    std::string raw;
    while (peek() != quote) {
      if (peek() == '<') fail("'<' in attribute value");
      raw.push_back(advance());
    }
    advance();
    return xml_unescape(raw);
  }

  std::unique_ptr<XmlNode> parse_element() {
    expect("<");
    auto node = std::make_unique<XmlNode>();
    node->name = parse_name();
    // Attributes.
    while (true) {
      skip_ws();
      if (eof()) fail("unterminated start tag");
      if (peek() == '/' || peek() == '>') break;
      std::string attr_name = parse_name();
      skip_ws();
      expect("=");
      skip_ws();
      node->attributes.emplace_back(std::move(attr_name), parse_attr_value());
    }
    if (peek() == '/') {
      expect("/>");
      return node;
    }
    expect(">");
    // Content.
    std::string raw_text;
    while (true) {
      if (eof()) fail("unterminated element <" + node->name + ">");
      if (starts_with("</")) {
        expect("</");
        const std::string closing = parse_name();
        if (closing != node->name) {
          fail("mismatched closing tag </" + closing + "> for <" +
               node->name + ">");
        }
        skip_ws();
        expect(">");
        break;
      }
      if (starts_with("<!--")) {
        skip_comment();
      } else if (starts_with("<![CDATA[")) {
        if (!raw_text.empty()) {
          node->text += xml_unescape(raw_text);
          raw_text.clear();
        }
        expect("<![CDATA[");
        while (!starts_with("]]>")) {
          if (eof()) fail("unterminated CDATA section");
          node->text.push_back(advance());
        }
        expect("]]>");
      } else if (starts_with("<?")) {
        skip_pi();
      } else if (peek() == '<') {
        if (!raw_text.empty()) {
          node->text += xml_unescape(raw_text);
          raw_text.clear();
        }
        node->children.push_back(parse_element());
      } else {
        raw_text.push_back(advance());
      }
    }
    if (!raw_text.empty()) {
      node->text += xml_unescape(raw_text);
    }
    return node;
  }

  std::string_view input_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t line_start_ = 0;
};

}  // namespace

std::unique_ptr<XmlNode> parse_xml(std::string_view input) {
  return XmlParser(input).parse();
}

}  // namespace cube
