// Minimal XML DOM parser: elements, attributes, character data, comments,
// CDATA sections, processing instructions, and the standard entity and
// character references.  Sufficient for the CUBE XML format; DTDs and
// namespaces are out of scope.
//
// Parse failures throw cube::ParseError carrying 1-based line/column.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cube {

/// One element of the parsed document tree.
struct XmlNode {
  std::string name;
  std::vector<std::pair<std::string, std::string>> attributes;
  /// Concatenated character data directly inside this element (children's
  /// text excluded), entity references resolved, surrounding whitespace
  /// preserved.
  std::string text;
  std::vector<std::unique_ptr<XmlNode>> children;

  /// Attribute lookup; nullopt if absent.
  [[nodiscard]] std::optional<std::string_view> attr(
      std::string_view name) const;
  /// Attribute lookup; throws ParseError-free cube::Error if absent.
  [[nodiscard]] std::string_view required_attr(std::string_view name) const;
  /// First child element with the given name, or nullptr.
  [[nodiscard]] const XmlNode* child(std::string_view name) const;
  /// All child elements with the given name, in document order.
  [[nodiscard]] std::vector<const XmlNode*> children_named(
      std::string_view name) const;
  /// Text of the first child with the given name, or "" if absent.
  [[nodiscard]] std::string child_text(std::string_view name) const;
};

/// Parses a complete document and returns its root element.
[[nodiscard]] std::unique_ptr<XmlNode> parse_xml(std::string_view input);

}  // namespace cube
