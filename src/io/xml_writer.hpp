// Minimal streaming XML writer with automatic escaping and indentation.
//
// The paper stores experiments in the CUBE XML format; this repository
// implements the XML layer from scratch (the original used libxml2).
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace cube {

/// Emits well-formed XML to an ostream.  Elements are opened with
/// open_element and closed in LIFO order by close_element; attributes must
/// be added before any child content.  All strings are escaped.
class XmlWriter {
 public:
  explicit XmlWriter(std::ostream& out);

  /// Writes the <?xml ...?> declaration.  Call first, at most once.
  void declaration();

  /// Opens a child element of the current element.
  void open_element(std::string_view name);

  /// Adds an attribute to the most recently opened element.  Throws
  /// cube::Error if content has already been written into it.
  void attribute(std::string_view name, std::string_view value);
  void attribute(std::string_view name, long value);
  void attribute(std::string_view name, std::size_t value);

  /// Writes character data inside the current element (inline, no extra
  /// indentation — used for short values like metric names).
  void text(std::string_view value);

  /// Writes an XML comment at the current position.
  void comment(std::string_view value);

  /// Closes the current element.
  void close_element();

  /// Closes all remaining elements.  Throws cube::Error if nothing is open.
  void finish();

 private:
  void close_start_tag();
  void indent();

  std::ostream& out_;
  std::vector<std::string> stack_;
  bool start_tag_open_ = false;
  bool has_inline_text_ = false;
};

}  // namespace cube
