// Experiment repository: a small file-backed store of CUBE experiments.
//
// The paper (§6): "implementing the CUBE algebra on top of a database
// management system in addition to a pure XML file representation would be
// a natural extension, and interfacing to an existing performance database
// might open a large amount of performance data to our approach.  On the
// other hand, CUBE — by relying on XML files only — provides
// cross-experiment capabilities without the burden of maintaining a whole
// database-management system."
//
// This module takes the middle road the paper hints at: a directory of
// CUBE files plus an XML index of their attributes, giving store / load /
// list / query-by-attribute over whole experiments — enough to manage the
// run series that mean/stddev/merge consume — without any DBMS.
#pragma once

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "model/experiment.hpp"

namespace cube {

/// On-disk encoding of a stored experiment.
enum class RepoFormat { Xml, Binary };

/// One index entry.
struct RepoEntry {
  std::string id;        ///< unique within the repository
  std::string file;      ///< file name relative to the repository root
  RepoFormat format = RepoFormat::Xml;
  /// The experiment's attributes at store time (name, kind, provenance,
  /// plus anything the producing tool attached) — the queryable part.
  std::map<std::string, std::string> attributes;
};

/// Directory-backed experiment store with an XML index.
///
/// The index (`index.xml`) is rewritten on every mutation via a temp file
/// and an atomic rename, so a crash mid-store cannot corrupt it.
/// Concurrent writers are out of scope (single-analyst workflows, like
/// the paper's).
class ExperimentRepository {
 public:
  /// Opens (or initializes) a repository at `directory`; the directory is
  /// created if absent.  Throws IoError/ParseError on a corrupt index.
  explicit ExperimentRepository(std::filesystem::path directory);

  /// Stores the experiment and returns its id (derived from the
  /// experiment's name, uniquified with a numeric suffix on collision).
  std::string store(const Experiment& experiment,
                    RepoFormat format = RepoFormat::Xml);

  /// Loads an experiment by id; throws cube::Error if unknown.
  [[nodiscard]] Experiment load(const std::string& id) const;

  /// Removes an entry and its file; throws cube::Error if unknown.
  void remove(const std::string& id);

  /// All entries, in store order.
  [[nodiscard]] const std::vector<RepoEntry>& entries() const noexcept {
    return entries_;
  }

  /// Entries whose attribute `key` equals `value`.
  [[nodiscard]] std::vector<RepoEntry> query(
      const std::string& key, const std::string& value) const;

  /// Loads several experiments at once (e.g. a run series for mean()).
  [[nodiscard]] std::vector<Experiment> load_all(
      const std::vector<RepoEntry>& selection) const;

  [[nodiscard]] const std::filesystem::path& directory() const noexcept {
    return directory_;
  }

 private:
  void read_index();
  void write_index() const;
  [[nodiscard]] std::string unique_id(const std::string& base) const;

  std::filesystem::path directory_;
  std::vector<RepoEntry> entries_;
};

}  // namespace cube
