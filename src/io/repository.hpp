// Experiment repository: a file-backed store of CUBE experiments.
//
// The paper (§6): "implementing the CUBE algebra on top of a database
// management system in addition to a pure XML file representation would be
// a natural extension, and interfacing to an existing performance database
// might open a large amount of performance data to our approach.  On the
// other hand, CUBE — by relying on XML files only — provides
// cross-experiment capabilities without the burden of maintaining a whole
// database-management system."
//
// This module takes the middle road the paper hints at: a directory of
// CUBE files plus an index of their attributes, giving store / load /
// list / query-by-attribute over whole experiments — enough to manage the
// run series that mean/stddev/merge consume — without any DBMS.
//
// Metadata is content-addressed: store() writes each distinct metadata
// once as a blob and the experiment files reference it by digest
// (FORMAT.md, "Metadata by reference").  Storing a 32-run series
// therefore writes the metadata once, and loading the series parses it
// once — every loaded experiment shares one in-memory instance through
// the repository's interner.  Columnar entries (RepoFormat::Columnar)
// additionally content-address their severity as a CUBESEV1 blob, which
// loads mmap instead of parse — the out-of-core form.
//
// TWO ON-DISK LAYOUTS coexist (docs/STORAGE.md):
//
//  * Legacy: one index.xml rewritten atomically on every mutation; blobs
//    flat under meta/; experiment files at the root.  O(repo) per store.
//  * Sharded: a segmented append-only index under index/ (one record
//    append per store — see index_segments.hpp), blobs sharded by digest
//    prefix (meta/<ab>/, sev/<ab>/), experiment files sharded by id
//    digest (exp/<ab>/).  O(1) per store, compaction in the background.
//
// Existing legacy repositories open unchanged; fresh directories
// initialize sharded; migrate() upgrades legacy to sharded in place.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "io/index_segments.hpp"
#include "io/meta_format.hpp"
#include "io/repo_entry.hpp"
#include "io/severity_format.hpp"
#include "model/experiment.hpp"

namespace cube {

/// Validation hook run over every experiment a repository loads; `context`
/// names the data source (the file path).  Throwing aborts the load.  The
/// lint subsystem provides a ready-made one (cube::lint::load_validator).
using LoadValidator =
    std::function<void(const Experiment&, const std::string&)>;

/// Which on-disk layout a repository uses (see file comment).
enum class RepoLayout {
  Auto,     ///< open whatever exists; initialize fresh directories sharded
  Legacy,   ///< initialize fresh directories with the single-index layout
  Sharded,  ///< initialize fresh directories with the sharded layout
};

/// Directory-backed experiment store.
///
/// CONCURRENCY.  One ExperimentRepository instance is safe to share
/// between threads: mutations (store/remove/migrate/refresh/compact) take
/// an exclusive lock, readers (load/query/load_all/entries_snapshot) a
/// shared one, and the metadata interner synchronizes itself.  This is
/// what lets the analysis daemon serve many sessions over one instance.
/// ACROSS processes the index is append-coherent but not push-updated: a
/// writer's changes are seen by other processes only when they call
/// refresh() — which, under the sharded layout, stats one file and parses
/// only the active segment's appended tail when the segment list is
/// unchanged.  Two processes STORING concurrently into the same directory
/// remain out of scope — last write wins.
class ExperimentRepository {
 public:
  /// Opens (or initializes) a repository at `directory`; the directory is
  /// created if absent.  An existing repository opens under whatever
  /// layout it has regardless of `layout`; a fresh directory initializes
  /// sharded unless RepoLayout::Legacy is requested.  Throws
  /// IoError/ParseError on a corrupt index.
  explicit ExperimentRepository(std::filesystem::path directory,
                                RepoLayout layout = RepoLayout::Auto);

  /// Stores the experiment and returns its id (derived from the
  /// experiment's name, uniquified with a numeric suffix on collision).
  /// The metadata blob is written only if its digest is new; columnar
  /// stores do the same for the severity blob.  Under the sharded layout
  /// this is one record append — O(1) in repository size.
  std::string store(const Experiment& experiment,
                    RepoFormat format = RepoFormat::Xml);

  /// Loads an experiment by id; throws cube::Error if unknown.  Metadata
  /// of blob-backed entries is interned: experiments over the same digest
  /// share one instance.  Columnar entries come back file-backed (their
  /// severity pages are mmapped, not copied).
  [[nodiscard]] Experiment load(const std::string& id) const;

  /// Loads an experiment file through this repository's blob resolvers
  /// and interner — for callers that resolved the path themselves (the
  /// query engine's planner).  `path` need not be listed in the index.
  [[nodiscard]] Experiment load_path(
      const std::filesystem::path& path, RepoFormat format,
      StorageKind storage = StorageKind::Dense) const;

  /// The digest -> metadata resolver over this repository's meta/
  /// directory, backed by its interner.  Valid while the repository lives.
  [[nodiscard]] MetadataResolver resolver() const;

  /// The digest -> severity-store resolver over this repository's sev/
  /// directory; blobs come back mmapped (file-backed stores).
  [[nodiscard]] SeverityResolver sev_resolver() const;

  /// Header-only stat of the severity blob `digest` references, or
  /// std::nullopt when no such blob exists.  Reads the 56-byte CUBESEV1
  /// header and never faults a payload page — the static plan analyzer's
  /// cost model runs on this (io.sev.bytes_read stays untouched).
  [[nodiscard]] std::optional<SevBlobStat> stat_sev_blob(
      std::uint64_t digest) const;

  /// The metadata interner; exposed so other layers (query engine) can
  /// share instances with repository loads.
  [[nodiscard]] MetadataInterner& interner() const noexcept {
    return interner_;
  }

  /// Installs (or clears, with an empty function) a validator run over
  /// every experiment load()/load_path()/load_all() produces.  Off by
  /// default: the readers already reject malformed data, so the extra
  /// O(data) pass is opt-in for pipelines that ingest foreign files.
  void set_load_validator(LoadValidator validator) {
    validator_ = std::move(validator);
  }
  [[nodiscard]] const LoadValidator& load_validator() const noexcept {
    return validator_;
  }

  /// Upgrades the repository in place: rewrites every legacy entry
  /// (inline metadata) to the blob-backed layout, and converts a legacy
  /// single-index repository to the sharded layout (blobs into prefix
  /// shards, experiment files into exp/<ab>/, index.xml replaced by the
  /// segmented index).  Returns how many entries were rewritten or
  /// relocated.  Query results are bit-identical before and after.
  std::size_t migrate();

  /// Removes an entry and its file; throws cube::Error if unknown.  Blobs
  /// the entry was the last referent of are deleted too.
  void remove(const std::string& id);

  /// Blob files (meta/ and sev/) referenced by no index entry (e.g. left
  /// over from a crash between blob write and index append).  Returned as
  /// file names relative to the repository root.
  [[nodiscard]] std::vector<std::string> orphan_blobs() const;

  /// Deletes all orphan blobs; returns how many were removed.
  std::size_t remove_orphan_blobs();

  /// Merges the segmented index into one compacted segment if enough
  /// tombstone/overwrite waste accumulated (the daemon's housekeeping
  /// calls this).  Returns the number of segment files superseded; 0 when
  /// compaction is not worthwhile or the layout is legacy.
  std::size_t compact_if_needed();

  /// Unconditional compact(); same return convention.
  std::size_t compact();

  /// Deletes segment files a crashed compaction left behind (those the
  /// MANIFEST does not list).  Returns how many were removed; 0 under the
  /// legacy layout.
  std::size_t remove_stray_segments();

  /// Picks up changes written by ANOTHER process (a CLI storing into a
  /// repository a daemon serves).  Legacy: re-reads the index if its
  /// bytes changed.  Sharded: re-reads only changed segments — an
  /// unchanged segment list costs one stat.  Returns true (and bumps
  /// generation()) when the entry list changed.  Throws
  /// IoError/ParseError if the index became unreadable.
  bool refresh();

  /// Monotonic change counter: bumped by every store/remove/migrate and
  /// by each refresh() that picked up external changes.  Cheap to poll;
  /// the query layer keys plan caches on it.
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_.load(std::memory_order_acquire);
  }

  /// All entries, in store order.  NOT safe against a concurrent mutator
  /// (the reference's vector can reallocate mid-iteration): use it from
  /// single-threaded tools, and entries_snapshot() anywhere a store may
  /// run concurrently.
  [[nodiscard]] const std::vector<RepoEntry>& entries() const noexcept {
    return entries_;
  }

  /// Copy of the entry list under the shared lock — the concurrency-safe
  /// counterpart of entries().
  [[nodiscard]] std::vector<RepoEntry> entries_snapshot() const;

  /// Entries whose attribute `key` equals `value`.
  [[nodiscard]] std::vector<RepoEntry> query(
      const std::string& key, const std::string& value) const;

  /// Loads several experiments at once (e.g. a run series for mean()).
  [[nodiscard]] std::vector<Experiment> load_all(
      const std::vector<RepoEntry>& selection) const;

  [[nodiscard]] const std::filesystem::path& directory() const noexcept {
    return directory_;
  }

  /// The layout this repository actually uses (never Auto).
  [[nodiscard]] RepoLayout layout() const noexcept { return layout_; }

  /// The segmented index, or nullptr under the legacy layout.  For
  /// offline tooling (cube_lint); not guarded against concurrent
  /// mutation.
  [[nodiscard]] const SegmentedIndex* segmented_index() const noexcept {
    return index_.get();
  }

 private:
  void read_index();
  void write_index() const;
  void rebuild_ids();
  /// Records a mutated/added entry in the on-disk index (segment append
  /// or legacy index rewrite).
  void index_store(const RepoEntry& entry);
  [[nodiscard]] std::string unique_id(const std::string& base) const;
  /// Writes the blob for `metadata` if absent; returns its hex digest.
  std::string ensure_blob(const Metadata& metadata) const;
  /// Writes the CUBESEV1 blob for `severity` if absent; returns its hex
  /// digest (of the blob bytes).
  std::string ensure_sev_blob(const SeverityStore& severity) const;
  /// True if any entry references the meta / sev blob digest `hex`.
  [[nodiscard]] bool blob_referenced(const std::string& hex) const;
  [[nodiscard]] bool sev_referenced(const std::string& hex) const;
  /// Existing on-disk location of a blob (sharded or flat), or the
  /// layout's preferred location if absent.
  [[nodiscard]] std::filesystem::path find_meta_blob(
      const std::string& hex) const;
  [[nodiscard]] std::filesystem::path find_sev_blob(
      const std::string& hex) const;
  void write_experiment_file(const Experiment& experiment,
                             const RepoEntry& entry) const;
  /// Shared body of compact()/compact_if_needed(); caller holds mutex_.
  std::size_t do_compact();

  std::filesystem::path directory_;
  RepoLayout layout_ = RepoLayout::Legacy;
  std::vector<RepoEntry> entries_;
  /// Ids in entries_, kept in lockstep — O(1) uniqueness instead of the
  /// O(repo) scan that used to make store() quadratic over a session.
  std::unordered_set<std::string> ids_;
  std::unique_ptr<SegmentedIndex> index_;  ///< sharded layout only
  mutable MetadataInterner interner_;
  LoadValidator validator_;
  /// Guards entries_ and index writes; see the class comment.
  mutable std::shared_mutex mutex_;
  std::atomic<std::uint64_t> generation_{0};
  /// Legacy layout: FNV-1a of the index bytes this instance last read or
  /// wrote; refresh() compares the on-disk index against it.
  mutable std::uint64_t index_digest_ = 0;
};

}  // namespace cube
