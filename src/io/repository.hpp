// Experiment repository: a small file-backed store of CUBE experiments.
//
// The paper (§6): "implementing the CUBE algebra on top of a database
// management system in addition to a pure XML file representation would be
// a natural extension, and interfacing to an existing performance database
// might open a large amount of performance data to our approach.  On the
// other hand, CUBE — by relying on XML files only — provides
// cross-experiment capabilities without the burden of maintaining a whole
// database-management system."
//
// This module takes the middle road the paper hints at: a directory of
// CUBE files plus an XML index of their attributes, giving store / load /
// list / query-by-attribute over whole experiments — enough to manage the
// run series that mean/stddev/merge consume — without any DBMS.
//
// Metadata is content-addressed: store() writes each distinct metadata
// once as a blob under meta/<digest>.meta and the experiment files
// reference it by digest (FORMAT.md, "Metadata by reference").  Storing a
// 32-run series therefore writes the metadata once, and loading the
// series parses it once — every loaded experiment shares one in-memory
// instance through the repository's interner.  Pre-refactor repositories
// (inline metadata, no meta/ directory) load unchanged; migrate() rewrites
// them to the blob layout in place.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <map>
#include <shared_mutex>
#include <string>
#include <vector>

#include "io/meta_format.hpp"
#include "model/experiment.hpp"

namespace cube {

/// On-disk encoding of a stored experiment.
enum class RepoFormat { Xml, Binary };

/// Validation hook run over every experiment a repository loads; `context`
/// names the data source (the file path).  Throwing aborts the load.  The
/// lint subsystem provides a ready-made one (cube::lint::load_validator).
using LoadValidator =
    std::function<void(const Experiment&, const std::string&)>;

/// One index entry.
struct RepoEntry {
  std::string id;        ///< unique within the repository
  std::string file;      ///< file name relative to the repository root
  RepoFormat format = RepoFormat::Xml;
  /// Hex digest of the referenced metadata blob; empty for a legacy entry
  /// whose file carries its metadata inline.
  std::string meta;
  /// The experiment's attributes at store time (name, kind, provenance,
  /// plus anything the producing tool attached) — the queryable part.
  std::map<std::string, std::string> attributes;
};

/// Directory-backed experiment store with an XML index.
///
/// The index (`index.xml`) is rewritten on every mutation via a temp file
/// and an atomic rename, so a crash mid-store cannot corrupt it.
///
/// CONCURRENCY.  One ExperimentRepository instance is safe to share
/// between threads: mutations (store/remove/migrate/refresh) take an
/// exclusive lock, readers (load/query/load_all/entries_snapshot) a
/// shared one, and the metadata interner synchronizes itself.  This is
/// what lets the analysis daemon serve many sessions over one instance.
/// ACROSS processes the index is append-coherent but not push-updated: a
/// writer's atomic index rename is seen by other processes only when they
/// call refresh(), which re-reads the index if its bytes changed (the
/// daemon does this; a long-running CLI can too).  Two processes STORING
/// concurrently into the same directory remain out of scope — last index
/// rename wins.
class ExperimentRepository {
 public:
  /// Opens (or initializes) a repository at `directory`; the directory is
  /// created if absent.  Throws IoError/ParseError on a corrupt index.
  explicit ExperimentRepository(std::filesystem::path directory);

  /// Stores the experiment and returns its id (derived from the
  /// experiment's name, uniquified with a numeric suffix on collision).
  /// The metadata blob is written only if its digest is new.
  std::string store(const Experiment& experiment,
                    RepoFormat format = RepoFormat::Xml);

  /// Loads an experiment by id; throws cube::Error if unknown.  Metadata
  /// of blob-backed entries is interned: experiments over the same digest
  /// share one instance.
  [[nodiscard]] Experiment load(const std::string& id) const;

  /// Loads an experiment file through this repository's blob resolver and
  /// interner — for callers that resolved the path themselves (the query
  /// engine's planner).  `path` need not be listed in the index.
  [[nodiscard]] Experiment load_path(
      const std::filesystem::path& path, RepoFormat format,
      StorageKind storage = StorageKind::Dense) const;

  /// The digest -> metadata resolver over this repository's meta/
  /// directory, backed by its interner.  Valid while the repository lives.
  [[nodiscard]] MetadataResolver resolver() const;

  /// The metadata interner; exposed so other layers (query engine) can
  /// share instances with repository loads.
  [[nodiscard]] MetadataInterner& interner() const noexcept {
    return interner_;
  }

  /// Installs (or clears, with an empty function) a validator run over
  /// every experiment load()/load_path()/load_all() produces.  Off by
  /// default: the readers already reject malformed data, so the extra
  /// O(data) pass is opt-in for pipelines that ingest foreign files.
  void set_load_validator(LoadValidator validator) {
    validator_ = std::move(validator);
  }
  [[nodiscard]] const LoadValidator& load_validator() const noexcept {
    return validator_;
  }

  /// Rewrites every legacy entry (inline metadata) to the blob-backed
  /// layout in place; returns how many entries were rewritten.
  std::size_t migrate();

  /// Removes an entry and its file; throws cube::Error if unknown.  If the
  /// entry was the last referent of its metadata blob, the blob is deleted
  /// too.
  void remove(const std::string& id);

  /// Blob files under meta/ referenced by no index entry (e.g. left over
  /// from a crash between blob write and index write).  Returned as file
  /// names relative to the repository root.
  [[nodiscard]] std::vector<std::string> orphan_blobs() const;

  /// Deletes all orphan blobs; returns how many were removed.
  std::size_t remove_orphan_blobs();

  /// Re-reads the index from disk if its bytes changed since this
  /// instance last read or wrote it — picking up entries appended by
  /// ANOTHER process (a CLI storing into a repository a daemon serves).
  /// Returns true (and bumps generation()) when the entry list was
  /// reloaded, false when the on-disk index is the one already held.
  /// Throws IoError/ParseError if the index became unreadable.
  bool refresh();

  /// Monotonic change counter: bumped by every store/remove/migrate and
  /// by each refresh() that picked up external changes.  Cheap to poll;
  /// the query layer keys plan caches on it.
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_.load(std::memory_order_acquire);
  }

  /// All entries, in store order.  NOT safe against a concurrent mutator
  /// (the reference's vector can reallocate mid-iteration): use it from
  /// single-threaded tools, and entries_snapshot() anywhere a store may
  /// run concurrently.
  [[nodiscard]] const std::vector<RepoEntry>& entries() const noexcept {
    return entries_;
  }

  /// Copy of the entry list under the shared lock — the concurrency-safe
  /// counterpart of entries().
  [[nodiscard]] std::vector<RepoEntry> entries_snapshot() const;

  /// Entries whose attribute `key` equals `value`.
  [[nodiscard]] std::vector<RepoEntry> query(
      const std::string& key, const std::string& value) const;

  /// Loads several experiments at once (e.g. a run series for mean()).
  [[nodiscard]] std::vector<Experiment> load_all(
      const std::vector<RepoEntry>& selection) const;

  [[nodiscard]] const std::filesystem::path& directory() const noexcept {
    return directory_;
  }

 private:
  void read_index();
  void write_index() const;
  [[nodiscard]] std::string unique_id(const std::string& base) const;
  /// Writes the blob for `metadata` if absent; returns its hex digest.
  std::string ensure_blob(const Metadata& metadata) const;
  /// True if any entry references the blob digest `hex`.
  [[nodiscard]] bool blob_referenced(const std::string& hex) const;
  void write_experiment_file(const Experiment& experiment,
                             const RepoEntry& entry) const;

  std::filesystem::path directory_;
  std::vector<RepoEntry> entries_;
  mutable MetadataInterner interner_;
  LoadValidator validator_;
  /// Guards entries_ and index rewrites; see the class comment.
  mutable std::shared_mutex mutex_;
  std::atomic<std::uint64_t> generation_{0};
  /// FNV-1a of the index bytes this instance last read or wrote; refresh()
  /// compares the on-disk index against it.
  mutable std::uint64_t index_digest_ = 0;
};

}  // namespace cube
