// Compact binary experiment format (extension).
//
// The paper relies on XML only and discusses database backends as future
// work; this binary codec is the repository's ablation point for the
// storage representation (bench A4 in DESIGN.md compares XML vs binary
// size and throughput).
//
// Layout: magic "CUBEBIN1", then length-prefixed sections in a fixed
// order — attributes, metrics, regions, call sites, cnodes, system tree,
// and the non-zero severity triples.  All integers are little-endian
// fixed-width; strings are u32-length-prefixed UTF-8.
//
// The by-reference variant (magic "CUBEBIN2") replaces the inline
// metadata sections with the u64 structural digest of a metadata blob
// (meta_format.hpp); severity ids are the dense indices of the referenced
// metadata.  Reading one requires a MetadataResolver.
#pragma once

#include <iosfwd>
#include <string>

#include "io/meta_format.hpp"
#include "model/experiment.hpp"

namespace cube {

/// Serializes the experiment to the binary format (inline metadata).
void write_cube_binary(const Experiment& experiment, std::ostream& out);
void write_cube_binary_file(const Experiment& experiment,
                            const std::string& path);
[[nodiscard]] std::string to_cube_binary(const Experiment& experiment);

/// Serializes by reference: attributes + metadata digest + severity.  The
/// referenced blob must be stored separately (the repository does this).
void write_cube_binary_ref(const Experiment& experiment, std::ostream& out);
void write_cube_binary_ref_file(const Experiment& experiment,
                                const std::string& path);
[[nodiscard]] std::string to_cube_binary_ref(const Experiment& experiment);

/// Deserializes either variant; throws cube::Error on a malformed or
/// truncated buffer, or on a by-reference stream without a resolver.
[[nodiscard]] Experiment read_cube_binary(
    std::string_view data, StorageKind storage = StorageKind::Dense,
    const MetadataResolver& resolver = {});
[[nodiscard]] Experiment read_cube_binary_file(
    const std::string& path, StorageKind storage = StorageKind::Dense,
    const MetadataResolver& resolver = {});

}  // namespace cube
