// Compact binary experiment format (extension).
//
// The paper relies on XML only and discusses database backends as future
// work; this binary codec is the repository's ablation point for the
// storage representation (bench A4 in DESIGN.md compares XML vs binary
// size and throughput).
//
// Layout: magic "CUBEBIN1", then length-prefixed sections in a fixed
// order — attributes, metrics, regions, call sites, cnodes, system tree,
// and the non-zero severity triples.  All integers are little-endian
// fixed-width; strings are u32-length-prefixed UTF-8.
#pragma once

#include <iosfwd>
#include <string>

#include "model/experiment.hpp"

namespace cube {

/// Serializes the experiment to the binary format.
void write_cube_binary(const Experiment& experiment, std::ostream& out);
void write_cube_binary_file(const Experiment& experiment,
                            const std::string& path);
[[nodiscard]] std::string to_cube_binary(const Experiment& experiment);

/// Deserializes; throws cube::Error on a malformed or truncated buffer.
[[nodiscard]] Experiment read_cube_binary(
    std::string_view data, StorageKind storage = StorageKind::Dense);
[[nodiscard]] Experiment read_cube_binary_file(
    const std::string& path, StorageKind storage = StorageKind::Dense);

}  // namespace cube
