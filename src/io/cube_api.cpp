#include "io/cube_api.hpp"

#include "common/error.hpp"
#include "io/cube_format.hpp"

namespace cube {

Cube::Cube() : metadata_(std::make_unique<Metadata>()) {}

std::size_t Cube::def_metric(const std::string& unique_name,
                             const std::string& display_name,
                             const std::string& uom, const std::string& descr,
                             std::size_t parent) {
  const Metric* parent_ptr =
      parent == NoParent ? nullptr : metadata_->metrics().at(parent).get();
  return metadata_
      ->add_metric(parent_ptr, unique_name, display_name, parse_unit(uom),
                   descr)
      .index();
}

std::size_t Cube::def_region(const std::string& name,
                             const std::string& module, long begin_line,
                             long end_line) {
  return metadata_->add_region(name, module, begin_line, end_line).index();
}

std::size_t Cube::def_callsite(const std::string& file, long line,
                               std::size_t callee) {
  return metadata_
      ->add_callsite(*metadata_->regions().at(callee), file, line)
      .index();
}

std::size_t Cube::def_cnode(std::size_t callsite, std::size_t parent) {
  const Cnode* parent_ptr =
      parent == NoParent ? nullptr : metadata_->cnodes().at(parent).get();
  return metadata_
      ->add_cnode(parent_ptr, *metadata_->callsites().at(callsite))
      .index();
}

std::size_t Cube::def_machine(const std::string& name) {
  return metadata_->add_machine(name).index();
}

std::size_t Cube::def_node(const std::string& name, std::size_t machine) {
  return metadata_->add_node(*metadata_->machines().at(machine), name)
      .index();
}

std::size_t Cube::def_process(const std::string& name, long rank,
                              std::size_t node) {
  return metadata_->add_process(*metadata_->nodes().at(node), name, rank)
      .index();
}

std::size_t Cube::def_thread(const std::string& name, long thread_id,
                             std::size_t process) {
  return metadata_
      ->add_thread(*metadata_->processes().at(process), name, thread_id)
      .index();
}

void Cube::set_severity(std::size_t metric, std::size_t cnode,
                        std::size_t thread, Severity value) {
  pending_.push_back(Pending{metric, cnode, thread, value, false});
}

void Cube::add_severity(std::size_t metric, std::size_t cnode,
                        std::size_t thread, Severity value) {
  pending_.push_back(Pending{metric, cnode, thread, value, true});
}

Experiment Cube::take(const std::string& name, StorageKind storage) {
  metadata_->validate();
  Experiment experiment(std::move(metadata_), storage);
  for (const Pending& p : pending_) {
    if (p.accumulate) {
      experiment.severity().add(p.metric, p.cnode, p.thread, p.value);
    } else {
      experiment.severity().set(p.metric, p.cnode, p.thread, p.value);
    }
  }
  experiment.set_name(name);
  pending_.clear();
  metadata_ = std::make_unique<Metadata>();
  return experiment;
}

void Cube::write_file(const Experiment& experiment, const std::string& path) {
  write_cube_xml_file(experiment, path);
}

Experiment Cube::read_file(const std::string& path) {
  return read_cube_xml_file(path);
}

}  // namespace cube
