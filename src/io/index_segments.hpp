// Segmented, append-friendly repository index (the sharded layout's
// replacement for the monolithic rewritten index.xml).
//
// On disk, under <repository>/index/:
//
//   MANIFEST          the segment list, one name per line after a header
//                     line; rewritten atomically (temp + rename) only when
//                     the list changes (seal, compaction).  Its presence
//                     marks a sharded-layout repository.
//   seg-NNNNNN.log    record logs.  All but the last listed segment are
//                     sealed; the last is ACTIVE and append-only.
//
// Each record is length-prefixed and checksummed:
//
//   R <payload-bytes> <fnv1a-hex>\n
//   <payload>\n
//
// where <payload> is a one-element XML fragment: an <entry .../> (store)
// or <remove id="..."/> (tombstone).  Replaying the segments in manifest
// order reproduces the entry list; a store() is ONE record append instead
// of an O(repo) index rewrite.
//
// Crash safety, extending the atomic-rename discipline of the legacy
// index: appends are single buffered writes, so a crash leaves at most a
// torn final frame, which the checksummed framing detects — readers stop
// at the tear and lose only the unfinished record; the next append by a
// (re)opened writer truncates the tear first.  Seals and compactions
// commit through the MANIFEST rename: segments not (yet) listed are
// simply never read, so a crash at any intermediate step is lossless
// (cube_lint reports the leftovers as orphan/stale segments).
//
// Readers refresh cheaply: an unchanged MANIFEST means only the active
// segment can have grown, so refresh() stats one file and parses only the
// appended tail — the generation-aware counterpart of the legacy
// whole-index digest compare.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "common/thread_safety.hpp"
#include "io/repo_entry.hpp"

namespace cube {

/// Manages the index/ directory of one repository.  Not thread-safe: the
/// owning ExperimentRepository serializes access through its own lock.
/// The class is itself a thread-safety capability: mutators require it,
/// and the owner vouches for its exclusive lock with assert_owned() —
/// clang's analysis then rejects any new mutating call site that forgot
/// to take the repository lock first.
class CUBE_CAPABILITY("repository index") SegmentedIndex {
 public:
  /// Tells the thread-safety analysis that the owner's exclusive lock
  /// serializes this object (a no-op at runtime).  Call under
  /// ExperimentRepository::mutex_ before mutating.
  void assert_owned() const CUBE_ASSERT_CAPABILITY(this) {}

  static constexpr const char* kIndexDirName = "index";
  static constexpr const char* kManifestName = "MANIFEST";
  /// Active segment is sealed (and a fresh one started) past this many
  /// records, bounding the tail a refresh() may have to re-parse.
  static constexpr std::uint64_t kSealRecords = 1024;
  /// compact() is worthwhile once this many dead records accumulated and
  /// they outnumber the live entries.
  static constexpr std::uint64_t kCompactMinDead = 64;

  /// True if `repo_dir` holds a segmented index (the sharded layout
  /// marker).
  [[nodiscard]] static bool present(const std::filesystem::path& repo_dir);

  /// Binds to <repo_dir>/index without touching the disk; call create()
  /// or load() next.
  explicit SegmentedIndex(std::filesystem::path repo_dir);

  /// Initializes an empty index: the directory, one empty active
  /// segment, and the MANIFEST.  Fails if a MANIFEST already exists.
  void create() CUBE_REQUIRES(*this);

  /// Full replay: reads the MANIFEST and every listed segment, rebuilding
  /// `entries` (cleared first) in store order.  Torn final frames are
  /// tolerated (see header comment).  Throws IoError/ParseError on a
  /// missing or corrupt manifest/segment.
  void load(std::vector<RepoEntry>& entries) CUBE_REQUIRES(*this);

  /// Picks up changes written by another process: a changed MANIFEST
  /// triggers a full reload; an unchanged one re-parses only the active
  /// segment's appended tail.  Returns true if `entries` changed.
  bool refresh(std::vector<RepoEntry>& entries) CUBE_REQUIRES(*this);

  /// Appends one store record to the active segment, sealing it first if
  /// full.  The caller updates its entry list itself.
  void append(const RepoEntry& entry) CUBE_REQUIRES(*this);

  /// Appends one tombstone record.
  void append_remove(const std::string& id) CUBE_REQUIRES(*this);

  struct CompactResult {
    std::size_t superseded = 0;   ///< segment files replaced
    bool entries_changed = false; ///< external records were merged into `live`
  };

  /// Rewrites the index as [one compacted segment holding `live`, one
  /// fresh active segment], committing via the MANIFEST rename, then
  /// deletes the superseded segments (best effort).  Before writing, any
  /// records another process appended since the last load/refresh are
  /// replayed into `live` (a changed MANIFEST triggers a full reload, an
  /// unchanged one a tail re-parse) so compaction never destroys them.
  CompactResult compact(std::vector<RepoEntry>& live) CUBE_REQUIRES(*this);

  /// True when enough tombstone/overwrite waste accumulated that
  /// compact() is worthwhile (`live_count` = current entry count).
  [[nodiscard]] bool should_compact(std::size_t live_count) const noexcept;

  /// Records replayed minus records still live — the compaction debt.
  [[nodiscard]] std::uint64_t dead_records(std::size_t live_count)
      const noexcept {
    return records_total_ > live_count ? records_total_ - live_count : 0;
  }

  [[nodiscard]] std::filesystem::path index_dir() const {
    return repo_dir_ / kIndexDirName;
  }

  /// The MANIFEST's segment list as of the last load/refresh/mutation.
  [[nodiscard]] const std::vector<std::string>& segment_names()
      const noexcept {
    return names_;
  }

  /// Segment-shaped files in index/ the MANIFEST does not list.
  /// `orphans`: numbered after the last listed segment — typically an
  /// interrupted compaction's output that never committed.  `stale`:
  /// numbered at or before the last listed segment, plus *.tmp leftovers
  /// — superseded files an interrupted compaction did not delete.  Names
  /// are relative to the repository root.
  struct StraySegments {
    std::vector<std::string> orphans;
    std::vector<std::string> stale;
  };
  [[nodiscard]] StraySegments stray_segments() const;

  /// Deletes every stray segment file; returns how many were removed.
  std::size_t remove_stray_segments() CUBE_REQUIRES(*this);

 private:
  struct SegmentState {
    std::string name;
    std::uint64_t parsed_bytes = 0;  ///< valid record prefix last seen
    std::uint64_t records = 0;       ///< records in that prefix
    bool torn_tail = false;  ///< bytes past parsed_bytes are garbage
  };

  [[nodiscard]] std::filesystem::path segment_path(
      const std::string& name) const {
    return index_dir() / name;
  }
  [[nodiscard]] std::string next_segment_name() const;
  void write_manifest(const std::vector<std::string>& names);
  void read_manifest();
  /// Parses records in `data` starting at `offset`, applying them to
  /// `entries`; returns the valid byte prefix and record count applied.
  struct ParseResult {
    std::uint64_t valid_bytes = 0;
    std::uint64_t records = 0;
  };
  ParseResult parse_records(std::string_view data, std::uint64_t offset,
                            const std::string& name,
                            std::vector<RepoEntry>& entries);
  void apply_record(std::string_view payload, const std::string& name,
                    std::vector<RepoEntry>& entries);
  /// Seals the active segment and starts a fresh one (MANIFEST rewrite).
  void seal_active();
  void append_frame(std::string_view payload);

  std::filesystem::path repo_dir_;
  std::vector<std::string> names_;      ///< manifest order
  std::vector<SegmentState> segments_;  ///< parallel to names_
  std::uint64_t manifest_digest_ = 0;   ///< fnv1a of MANIFEST bytes held
  std::uint64_t records_total_ = 0;     ///< records applied since load()
};

/// Renders / parses one record payload (exposed for tests and lint).
[[nodiscard]] std::string render_entry_record(const RepoEntry& entry);
[[nodiscard]] std::string render_remove_record(const std::string& id);

}  // namespace cube
