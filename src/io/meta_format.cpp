#include "io/meta_format.hpp"

#include <cstring>
#include <fstream>
#include <sstream>

#include "common/digest.hpp"
#include "common/error.hpp"
#include "io/binary_codec.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace cube {

namespace {

constexpr char kMetaMagic[8] = {'C', 'U', 'B', 'E', 'M', 'E', 'T', '1'};

obs::Counter& meta_bytes_read_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "io.meta.bytes_read", obs::SampleUnit::Bytes);
  return c;
}

obs::Counter& meta_bytes_written_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "io.meta.bytes_written", obs::SampleUnit::Bytes);
  return c;
}

}  // namespace

bool is_cube_meta(std::string_view data) noexcept {
  return data.size() >= sizeof kMetaMagic &&
         std::memcmp(data.data(), kMetaMagic, sizeof kMetaMagic) == 0;
}

void write_cube_meta(const Metadata& metadata, std::ostream& out) {
  OBS_SPAN("io.meta.write");
  if (!metadata.frozen()) {
    throw Error("metadata blob requires frozen metadata");
  }
  const auto before = out.tellp();
  out.write(kMetaMagic, sizeof kMetaMagic);
  detail::BinaryEncoder e(out);
  e.u64(metadata.digest());
  detail::encode_metadata(e, metadata);
  const auto after = out.tellp();
  if (before != std::streampos(-1) && after != std::streampos(-1)) {
    meta_bytes_written_counter().add(static_cast<std::uint64_t>(after - before));
  }
}

void write_cube_meta_file(const Metadata& metadata, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot create file '" + path + "'");
  write_cube_meta(metadata, out);
  out.flush();
  if (!out) throw IoError("write to '" + path + "' failed");
}

std::string to_cube_meta(const Metadata& metadata) {
  std::ostringstream os(std::ios::binary);
  write_cube_meta(metadata, os);
  return os.str();
}

std::shared_ptr<const Metadata> read_cube_meta(std::string_view data) {
  OBS_SPAN("io.meta.read");
  meta_bytes_read_counter().add(data.size());
  if (!is_cube_meta(data)) {
    throw CheckError("file.bad-magic", "",
                     "not a CUBE metadata blob (bad magic)");
  }
  detail::BinaryDecoder d(data.substr(sizeof kMetaMagic));
  const std::uint64_t recorded = d.u64();
  auto md = detail::decode_metadata(d);
  if (!d.done()) {
    throw CheckError("file.trailing-bytes", "",
                     "trailing bytes after CUBE metadata blob");
  }
  auto frozen = freeze_metadata(std::move(md));
  if (frozen->digest() != recorded) {
    throw CheckError("meta.digest-mismatch", "",
                     "metadata blob digest mismatch (recorded " +
                         digest_hex(recorded) + ", content hashes to " +
                         digest_hex(frozen->digest()) + ")");
  }
  return frozen;
}

std::shared_ptr<const Metadata> read_cube_meta_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return read_cube_meta(buffer.str());
}

std::string meta_blob_name(std::uint64_t digest) {
  return digest_hex(digest) + ".meta";
}

MetadataResolver directory_resolver(std::filesystem::path directory,
                                    MetadataInterner* interner) {
  return [directory = std::move(directory),
          interner](std::uint64_t digest) -> std::shared_ptr<const Metadata> {
    if (interner != nullptr) {
      if (auto live = interner->lookup(digest)) return live;
    }
    // Sharded layout first (meta/<ab>/<digest>.meta), flat as fallback.
    const std::string name = meta_blob_name(digest);
    std::error_code ec;
    std::filesystem::path path =
        directory / "meta" / name.substr(0, 2) / name;
    if (!std::filesystem::exists(path, ec)) {
      path = directory / "meta" / name;
    }
    auto md = read_cube_meta_file(path.string());
    if (md->digest() != digest) {
      // read_cube_meta verified content against the blob's own record; this
      // guards against a blob filed under the wrong name.
      throw CheckError("meta.misfiled-blob", meta_blob_name(digest),
                       "blob holds digest " + digest_hex(md->digest()) +
                           ", not the digest its file name claims");
    }
    return interner != nullptr ? interner->intern(std::move(md)) : md;
  };
}

}  // namespace cube
