// The CUBE construction API.
//
// The paper: "We have implemented a C++ API to read experiments from a file
// and to create experiments and write them to a file.  The API is a simple
// class interface with fewer than fifteen methods."  This facade is that
// interface (13 methods): third-party tools (our CONE and EXPERT included)
// build experiments through plain integer handles without touching the
// model classes, then write them to disk or hand them to the algebra.
#pragma once

#include <memory>
#include <string>

#include "model/experiment.hpp"

namespace cube {

/// Builder facade producing a valid CUBE experiment.
///
/// Handles returned by the def_* methods are dense indices into the
/// respective entity dimension; pass kNoIndex (or the NoParent constant)
/// where a root entity is meant.
class Cube {
 public:
  /// Handle value meaning "no parent" for def_metric / def_cnode.
  static constexpr std::size_t NoParent = kNoIndex;

  Cube();

  /// Defines a metric below `parent` (NoParent for a root).  `uom` is one
  /// of "sec", "bytes", "occ".  Returns the metric handle.
  std::size_t def_metric(const std::string& unique_name,
                         const std::string& display_name,
                         const std::string& uom, const std::string& descr,
                         std::size_t parent = NoParent);

  /// Defines a region (function/loop/block).  Returns the region handle.
  std::size_t def_region(const std::string& name, const std::string& module,
                         long begin_line = -1, long end_line = -1);

  /// Defines a call site in `file` at `line` entering region `callee`.
  std::size_t def_callsite(const std::string& file, long line,
                           std::size_t callee);

  /// Defines a call-tree node entered through `callsite`, below `parent`
  /// (NoParent for a root call path).  Returns the cnode handle.
  std::size_t def_cnode(std::size_t callsite, std::size_t parent = NoParent);

  /// Defines a machine / an SMP node / a process / a thread.
  std::size_t def_machine(const std::string& name);
  std::size_t def_node(const std::string& name, std::size_t machine);
  std::size_t def_process(const std::string& name, long rank,
                          std::size_t node);
  std::size_t def_thread(const std::string& name, long thread_id,
                         std::size_t process);

  /// Sets / accumulates the severity of (metric, cnode, thread).  Values
  /// are buffered and materialized by take().
  void set_severity(std::size_t metric, std::size_t cnode, std::size_t thread,
                    Severity value);
  void add_severity(std::size_t metric, std::size_t cnode, std::size_t thread,
                    Severity value);

  /// Validates and returns the finished experiment; the builder is left
  /// empty and can be reused.  `name` becomes the experiment name.
  [[nodiscard]] Experiment take(const std::string& name,
                                StorageKind storage = StorageKind::Dense);

  /// Writes an experiment to a CUBE XML file.
  static void write_file(const Experiment& experiment,
                         const std::string& path);
  /// Reads an experiment from a CUBE XML file.
  [[nodiscard]] static Experiment read_file(const std::string& path);

 private:
  struct Pending {
    std::size_t metric;
    std::size_t cnode;
    std::size_t thread;
    Severity value;
    bool accumulate;
  };

  std::unique_ptr<Metadata> metadata_;
  std::vector<Pending> pending_;
};

}  // namespace cube
