#include "io/xml_writer.hpp"

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace cube {

XmlWriter::XmlWriter(std::ostream& out) : out_(out) {}

void XmlWriter::declaration() {
  out_ << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
}

void XmlWriter::indent() {
  for (std::size_t i = 0; i < stack_.size(); ++i) out_ << "  ";
}

void XmlWriter::close_start_tag() {
  if (start_tag_open_) {
    out_ << ">";
    start_tag_open_ = false;
    if (!has_inline_text_) out_ << "\n";
  }
}

void XmlWriter::open_element(std::string_view name) {
  close_start_tag();
  if (has_inline_text_) {
    throw Error("cannot nest an element inside inline text content");
  }
  indent();
  out_ << '<' << name;
  stack_.emplace_back(name);
  start_tag_open_ = true;
  has_inline_text_ = false;
}

void XmlWriter::attribute(std::string_view name, std::string_view value) {
  if (!start_tag_open_) {
    throw Error("attribute '" + std::string(name) +
                "' added after element content");
  }
  out_ << ' ' << name << "=\"" << xml_escape(value) << '"';
}

void XmlWriter::attribute(std::string_view name, long value) {
  attribute(name, std::to_string(value));
}

void XmlWriter::attribute(std::string_view name, std::size_t value) {
  attribute(name, std::to_string(value));
}

void XmlWriter::text(std::string_view value) {
  if (stack_.empty()) throw Error("text outside of any element");
  if (start_tag_open_) {
    out_ << '>';
    start_tag_open_ = false;
  }
  has_inline_text_ = true;
  out_ << xml_escape(value);
}

void XmlWriter::comment(std::string_view value) {
  close_start_tag();
  indent();
  out_ << "<!-- " << value << " -->\n";
}

void XmlWriter::close_element() {
  if (stack_.empty()) throw Error("close_element with no open element");
  const std::string name = stack_.back();
  stack_.pop_back();
  if (start_tag_open_) {
    out_ << "/>\n";
    start_tag_open_ = false;
  } else if (has_inline_text_) {
    out_ << "</" << name << ">\n";
  } else {
    indent();
    out_ << "</" << name << ">\n";
  }
  has_inline_text_ = false;
}

void XmlWriter::finish() {
  if (stack_.empty()) throw Error("finish with no open element");
  while (!stack_.empty()) close_element();
}

}  // namespace cube
