// Metadata blob format: one frozen Metadata, content-addressed by its
// structural digest.
//
// Layout: magic "CUBEMET1", the u64 structural digest, then the metadata
// sections in CUBEBIN1 order (see binary_codec.hpp).  The digest doubles
// as an integrity check: the reader recomputes it at freeze and rejects a
// blob whose content does not hash to its recorded digest.
//
// Blobs back the by-reference experiment formats (FORMAT.md, "Metadata by
// reference"): the repository stores each distinct metadata once under
// meta/<digest>.meta, and experiment files reference it by digest.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>

#include "model/metadata.hpp"

namespace cube {

/// Maps a metadata digest to the frozen instance it denotes.  Readers of
/// by-reference experiment files call this for the <metaref> / embedded
/// digest; throwing or returning nullptr fails the read.
using MetadataResolver =
    std::function<std::shared_ptr<const Metadata>(std::uint64_t digest)>;

/// Resolver over the repository blob layout: reads the blob under
/// `directory` at `meta/<ab>/<digest>.meta` (the sharded layout, <ab> =
/// first two digest hex digits) or `meta/<digest>.meta` (legacy flat
/// layout).  With `interner`, repeated digests return the SAME
/// instance (pointer-equal), which is what makes a loaded run series share
/// its metadata in memory.  The interner must outlive the resolver.
[[nodiscard]] MetadataResolver directory_resolver(
    std::filesystem::path directory, MetadataInterner* interner = nullptr);

/// Blob file name for a digest: "<016x hex>.meta".
[[nodiscard]] std::string meta_blob_name(std::uint64_t digest);

/// Serializes frozen metadata as a blob.  Throws Error if not frozen.
void write_cube_meta(const Metadata& metadata, std::ostream& out);
void write_cube_meta_file(const Metadata& metadata, const std::string& path);
[[nodiscard]] std::string to_cube_meta(const Metadata& metadata);

/// Deserializes a blob into frozen metadata.  Throws cube::Error on a bad
/// magic, truncation, or a digest mismatch.
[[nodiscard]] std::shared_ptr<const Metadata> read_cube_meta(
    std::string_view data);
[[nodiscard]] std::shared_ptr<const Metadata> read_cube_meta_file(
    const std::string& path);

/// True if `data` starts with the metadata blob magic.
[[nodiscard]] bool is_cube_meta(std::string_view data) noexcept;

}  // namespace cube
