#include "io/index_segments.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "common/digest.hpp"
#include "common/error.hpp"
#include "io/xml_parser.hpp"
#include "io/xml_writer.hpp"

namespace cube {

namespace {

constexpr const char* kManifestHeader = "cube-repo-manifest 1";

[[nodiscard]] std::string read_file_bytes(const std::filesystem::path& path,
                                          std::uint64_t offset = 0) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw IoError("cannot open '" + path.string() + "'");
  }
  if (offset > 0) in.seekg(static_cast<std::streamoff>(offset));
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

void write_file_atomic(const std::filesystem::path& target,
                       std::string_view bytes) {
  const std::filesystem::path temp = target.string() + ".tmp";
  {
    std::ofstream out(temp, std::ios::trunc | std::ios::binary);
    if (!out) {
      throw IoError("cannot write '" + temp.string() + "'");
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::error_code cleanup;
      std::filesystem::remove(temp, cleanup);
      throw IoError("write to '" + temp.string() + "' failed");
    }
  }
  std::error_code ec;
  std::filesystem::rename(temp, target, ec);
  if (ec) {
    std::error_code cleanup;
    std::filesystem::remove(temp, cleanup);
    throw IoError("cannot replace '" + target.string() + "': " +
                  ec.message());
  }
}

/// "seg-NNNNNN.log" -> NNNNNN, or 0 if the name does not match.
[[nodiscard]] std::uint64_t segment_number(std::string_view name) {
  if (name.size() != 14 || name.substr(0, 4) != "seg-" ||
      name.substr(10) != ".log") {
    return 0;
  }
  std::uint64_t n = 0;
  for (const char c : name.substr(4, 6)) {
    if (c < '0' || c > '9') return 0;
    n = n * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return n;
}

[[nodiscard]] std::string segment_name_for(std::uint64_t number) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "seg-%06llu.log",
                static_cast<unsigned long long>(number));
  return buf;
}

[[nodiscard]] std::string frame_record(std::string_view payload) {
  std::string out = "R " + std::to_string(payload.size()) + " " +
                    digest_hex(fnv1a(payload)) + "\n";
  out.append(payload);
  out.push_back('\n');
  return out;
}

void render_entry_xml(XmlWriter& w, const RepoEntry& entry) {
  w.open_element("entry");
  w.attribute("id", entry.id);
  w.attribute("file", entry.file);
  w.attribute("format", std::string_view(repo_format_name(entry.format)));
  if (!entry.meta.empty()) w.attribute("meta", entry.meta);
  if (!entry.sev.empty()) w.attribute("sev", entry.sev);
  for (const auto& [key, value] : entry.attributes) {
    w.open_element("attr");
    w.attribute("key", key);
    w.attribute("value", value);
    w.close_element();
  }
  w.close_element();
}

[[nodiscard]] RepoEntry entry_from_xml(const XmlNode& node) {
  RepoEntry entry;
  entry.id = std::string(node.required_attr("id"));
  entry.file = std::string(node.required_attr("file"));
  entry.format = parse_repo_format(node.attr("format").value_or("xml"));
  entry.meta = std::string(node.attr("meta").value_or(""));
  entry.sev = std::string(node.attr("sev").value_or(""));
  for (const XmlNode* attr : node.children_named("attr")) {
    entry.attributes[std::string(attr->required_attr("key"))] =
        std::string(attr->required_attr("value"));
  }
  return entry;
}

}  // namespace

std::string render_entry_record(const RepoEntry& entry) {
  std::ostringstream out;
  {
    XmlWriter w(out);
    render_entry_xml(w, entry);
  }
  return std::move(out).str();
}

std::string render_remove_record(const std::string& id) {
  std::ostringstream out;
  {
    XmlWriter w(out);
    w.open_element("remove");
    w.attribute("id", id);
    w.close_element();
  }
  return std::move(out).str();
}

bool SegmentedIndex::present(const std::filesystem::path& repo_dir) {
  std::error_code ec;
  return std::filesystem::exists(
      repo_dir / kIndexDirName / kManifestName, ec);
}

SegmentedIndex::SegmentedIndex(std::filesystem::path repo_dir)
    : repo_dir_(std::move(repo_dir)) {}

void SegmentedIndex::create() {
  const std::filesystem::path dir = index_dir();
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw IoError("cannot create index directory '" + dir.string() + "': " +
                  ec.message());
  }
  if (std::filesystem::exists(dir / kManifestName)) {
    throw Error("segmented index already exists in '" + dir.string() + "'");
  }
  const std::string first = segment_name_for(1);
  {
    std::ofstream seg(segment_path(first), std::ios::trunc | std::ios::binary);
    if (!seg) {
      throw IoError("cannot create segment '" + first + "'");
    }
  }
  names_ = {first};
  segments_ = {SegmentState{first, 0, 0, false}};
  records_total_ = 0;
  write_manifest(names_);
}

void SegmentedIndex::read_manifest() {
  const std::filesystem::path path = index_dir() / kManifestName;
  const std::string bytes = read_file_bytes(path);
  manifest_digest_ = fnv1a(bytes);
  names_.clear();
  std::istringstream in(bytes);
  std::string line;
  if (!std::getline(in, line) || line != kManifestHeader) {
    throw Error("'" + path.string() + "' is not a repository index manifest");
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (segment_number(line) == 0) {
      throw Error("manifest lists malformed segment name '" + line + "'");
    }
    names_.push_back(line);
  }
  if (names_.empty()) {
    throw Error("manifest '" + path.string() + "' lists no segments");
  }
}

void SegmentedIndex::write_manifest(const std::vector<std::string>& names) {
  std::string bytes = std::string(kManifestHeader) + "\n";
  for (const std::string& name : names) {
    bytes += name;
    bytes += '\n';
  }
  write_file_atomic(index_dir() / kManifestName, bytes);
  names_ = names;
  manifest_digest_ = fnv1a(bytes);
}

void SegmentedIndex::apply_record(std::string_view payload,
                                  const std::string& name,
                                  std::vector<RepoEntry>& entries) {
  std::unique_ptr<XmlNode> node;
  try {
    node = parse_xml(payload);
  } catch (const Error& e) {
    throw IoError("segment '" + name +
                  "': checksummed record holds malformed XML: " + e.what());
  }
  if (node->name == "remove") {
    const std::string id(node->required_attr("id"));
    const auto it = std::find_if(
        entries.begin(), entries.end(),
        [&](const RepoEntry& e) { return e.id == id; });
    if (it != entries.end()) entries.erase(it);
    return;
  }
  if (node->name != "entry") {
    throw IoError("segment '" + name + "': unknown record element <" +
                  node->name + ">");
  }
  RepoEntry entry = entry_from_xml(*node);
  const auto it = std::find_if(
      entries.begin(), entries.end(),
      [&](const RepoEntry& e) { return e.id == entry.id; });
  if (it != entries.end()) {
    *it = std::move(entry);
  } else {
    entries.push_back(std::move(entry));
  }
}

SegmentedIndex::ParseResult SegmentedIndex::parse_records(
    std::string_view data, std::uint64_t offset, const std::string& name,
    std::vector<RepoEntry>& entries) {
  ParseResult result;
  result.valid_bytes = offset;
  std::size_t pos = 0;
  while (pos < data.size()) {
    // Header: "R <len> <16 hex>\n".  Anything malformed or incomplete is
    // a torn tail: a crash mid-append.  Stop; bytes before pos stay valid.
    const std::size_t eol = data.find('\n', pos);
    if (eol == std::string_view::npos) break;
    const std::string_view header = data.substr(pos, eol - pos);
    if (header.size() < 20 || header.substr(0, 2) != "R ") break;
    const std::size_t sep = header.rfind(' ');
    if (sep < 2 || sep + 17 != header.size()) break;
    std::uint64_t len = 0;
    bool numeric = sep > 2;
    for (const char c : header.substr(2, sep - 2)) {
      if (c < '0' || c > '9') {
        numeric = false;
        break;
      }
      len = len * 10 + static_cast<std::uint64_t>(c - '0');
    }
    if (!numeric) break;
    std::uint64_t digest = 0;
    bool hex_ok = true;
    for (const char c : header.substr(sep + 1)) {
      digest <<= 4;
      if (c >= '0' && c <= '9') {
        digest |= static_cast<std::uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digest |= static_cast<std::uint64_t>(c - 'a' + 10);
      } else {
        hex_ok = false;
        break;
      }
    }
    if (!hex_ok) break;
    const std::size_t payload_at = eol + 1;
    if (payload_at + len + 1 > data.size()) break;  // frame incomplete
    const std::string_view payload = data.substr(payload_at, len);
    if (data[payload_at + len] != '\n') break;
    if (fnv1a(payload) != digest) break;  // torn or bit-rotted tail
    apply_record(payload, name, entries);
    pos = payload_at + len + 1;
    result.valid_bytes = offset + pos;
    ++result.records;
  }
  return result;
}

void SegmentedIndex::load(std::vector<RepoEntry>& entries) {
  read_manifest();
  entries.clear();
  segments_.clear();
  records_total_ = 0;
  for (const std::string& name : names_) {
    const std::filesystem::path path = segment_path(name);
    const std::string data = read_file_bytes(path);
    const ParseResult parsed = parse_records(data, 0, name, entries);
    SegmentState state;
    state.name = name;
    state.parsed_bytes = parsed.valid_bytes;
    state.records = parsed.records;
    state.torn_tail = parsed.valid_bytes < data.size();
    records_total_ += parsed.records;
    segments_.push_back(std::move(state));
  }
}

bool SegmentedIndex::refresh(std::vector<RepoEntry>& entries) {
  const std::string manifest_bytes =
      read_file_bytes(index_dir() / kManifestName);
  if (fnv1a(manifest_bytes) != manifest_digest_) {
    // Segment list changed (another process sealed or compacted): replay
    // everything.
    load(entries);
    return true;
  }
  // Same manifest: only the active segment can have grown.
  SegmentState& active = segments_.back();
  const std::filesystem::path path = segment_path(active.name);
  std::error_code ec;
  const std::uint64_t size = std::filesystem::file_size(path, ec);
  if (ec) {
    throw IoError("cannot stat segment '" + path.string() + "'");
  }
  if (size < active.parsed_bytes) {
    // External truncation — not a supported transition; recover by replay.
    load(entries);
    return true;
  }
  if (size == active.parsed_bytes && !active.torn_tail) return false;
  const std::string tail = read_file_bytes(path, active.parsed_bytes);
  const ParseResult parsed =
      parse_records(tail, active.parsed_bytes, active.name, entries);
  active.parsed_bytes = parsed.valid_bytes;
  active.records += parsed.records;
  active.torn_tail = parsed.valid_bytes < size;
  records_total_ += parsed.records;
  return parsed.records > 0;
}

void SegmentedIndex::append_frame(std::string_view payload) {
  SegmentState& active = segments_.back();
  const std::filesystem::path path = segment_path(active.name);
  if (active.torn_tail) {
    // A previous writer crashed mid-append: drop the torn frame before
    // adding ours, or it would shadow every later record from readers.
    std::error_code ec;
    std::filesystem::resize_file(path, active.parsed_bytes, ec);
    if (ec) {
      throw IoError("cannot repair torn segment '" + path.string() + "': " +
                    ec.message());
    }
    active.torn_tail = false;
  }
  const std::string frame = frame_record(payload);
  std::ofstream out(path, std::ios::app | std::ios::binary);
  if (!out) {
    throw IoError("cannot append to segment '" + path.string() + "'");
  }
  out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  out.flush();
  if (!out) {
    throw IoError("append to segment '" + path.string() + "' failed");
  }
  active.parsed_bytes += frame.size();
  active.records += 1;
  records_total_ += 1;
}

std::string SegmentedIndex::next_segment_name() const {
  std::uint64_t max = 0;
  for (const std::string& name : names_) {
    max = std::max(max, segment_number(name));
  }
  return segment_name_for(max + 1);
}

void SegmentedIndex::seal_active() {
  const std::string fresh = next_segment_name();
  {
    std::ofstream seg(segment_path(fresh), std::ios::trunc | std::ios::binary);
    if (!seg) {
      throw IoError("cannot create segment '" + fresh + "'");
    }
  }
  std::vector<std::string> names = names_;
  names.push_back(fresh);
  segments_.push_back(SegmentState{fresh, 0, 0, false});
  write_manifest(names);
}

void SegmentedIndex::append(const RepoEntry& entry) {
  if (segments_.back().records >= kSealRecords) seal_active();
  append_frame(render_entry_record(entry));
}

void SegmentedIndex::append_remove(const std::string& id) {
  if (segments_.back().records >= kSealRecords) seal_active();
  append_frame(render_remove_record(id));
}

bool SegmentedIndex::should_compact(std::size_t live_count) const noexcept {
  const std::uint64_t dead = dead_records(live_count);
  return dead >= kCompactMinDead && dead > live_count;
}

SegmentedIndex::CompactResult SegmentedIndex::compact(
    std::vector<RepoEntry>& live) {
  CompactResult result;
  // Another process may have written since our last load/refresh; those
  // records must survive the compaction or they are silently destroyed
  // (and the follow-up refresh() would see the just-written MANIFEST as
  // unchanged, so they would never be reloaded either).  A changed
  // MANIFEST means the segment list itself moved under us: replay
  // everything.  An unchanged one means only the active segment can have
  // grown: merge its appended tail.
  if (fnv1a(read_file_bytes(index_dir() / kManifestName)) !=
      manifest_digest_) {
    load(live);
    result.entries_changed = true;
  } else {
    SegmentState& active = segments_.back();
    const std::filesystem::path path = segment_path(active.name);
    std::error_code ec;
    const std::uint64_t size = std::filesystem::file_size(path, ec);
    if (ec) {
      throw IoError("cannot stat segment '" + path.string() + "'");
    }
    if (size > active.parsed_bytes || active.torn_tail) {
      const std::string tail = read_file_bytes(path, active.parsed_bytes);
      const ParseResult parsed =
          parse_records(tail, active.parsed_bytes, active.name, live);
      active.parsed_bytes = parsed.valid_bytes;
      active.records += parsed.records;
      records_total_ += parsed.records;
      result.entries_changed = parsed.records > 0;
    }
  }
  // Write the compacted segment under the next free number, a fresh
  // active segment after it, then commit both through the MANIFEST
  // rename.  Old segments stay readable until the commit; afterwards
  // they are stale and deleted (cube_lint flags leftovers of a crash
  // here as stale segments — recovery needs nothing else).
  std::uint64_t max = 0;
  for (const std::string& name : names_) {
    max = std::max(max, segment_number(name));
  }
  const std::string compacted = segment_name_for(max + 1);
  const std::string fresh = segment_name_for(max + 2);
  std::string body;
  std::uint64_t body_records = 0;
  for (const RepoEntry& entry : live) {
    body += frame_record(render_entry_record(entry));
    ++body_records;
  }
  write_file_atomic(segment_path(compacted), body);
  {
    std::ofstream seg(segment_path(fresh), std::ios::trunc | std::ios::binary);
    if (!seg) {
      throw IoError("cannot create segment '" + fresh + "'");
    }
  }
  const std::vector<std::string> old = names_;
  write_manifest({compacted, fresh});  // the commit point
  for (const std::string& name : old) {
    std::error_code ec;
    std::filesystem::remove(segment_path(name), ec);
  }
  segments_ = {
      SegmentState{compacted, static_cast<std::uint64_t>(body.size()),
                   body_records, false},
      SegmentState{fresh, 0, 0, false}};
  records_total_ = body_records;
  result.superseded = old.size();
  return result;
}

SegmentedIndex::StraySegments SegmentedIndex::stray_segments() const {
  StraySegments out;
  std::error_code ec;
  std::uint64_t last_listed = 0;
  for (const std::string& name : names_) {
    last_listed = std::max(last_listed, segment_number(name));
  }
  for (const auto& file :
       std::filesystem::directory_iterator(index_dir(), ec)) {
    const std::string name = file.path().filename().string();
    if (name == kManifestName) continue;
    const std::string rel =
        (std::filesystem::path(kIndexDirName) / name).string();
    if (file.path().extension() == ".tmp") {
      out.stale.push_back(rel);
      continue;
    }
    const std::uint64_t number = segment_number(name);
    if (number == 0) continue;  // not segment-shaped; none of our business
    if (std::find(names_.begin(), names_.end(), name) != names_.end()) {
      continue;
    }
    if (number > last_listed) {
      out.orphans.push_back(rel);
    } else {
      out.stale.push_back(rel);
    }
  }
  std::sort(out.orphans.begin(), out.orphans.end());
  std::sort(out.stale.begin(), out.stale.end());
  return out;
}

std::size_t SegmentedIndex::remove_stray_segments() {
  const StraySegments stray = stray_segments();
  std::size_t removed = 0;
  const auto drop = [&](const std::vector<std::string>& names) {
    for (const std::string& rel : names) {
      std::error_code ec;
      if (std::filesystem::remove(repo_dir_ / rel, ec) && !ec) ++removed;
    }
  };
  drop(stray.orphans);
  drop(stray.stale);
  return removed;
}

}  // namespace cube
