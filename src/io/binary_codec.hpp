// Internal little-endian codec shared by the binary experiment format
// (CUBEBIN1/CUBEBIN2) and the metadata blob format (CUBEMET1).
//
// Not part of the public io API — the public entry points live in
// binary_format.hpp and meta_format.hpp.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>

#include "model/metadata.hpp"

namespace cube::detail {

class BinaryEncoder {
 public:
  explicit BinaryEncoder(std::ostream& out) : out_(out) {}

  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  void str(const std::string& s);

 private:
  std::ostream& out_;
};

class BinaryDecoder {
 public:
  explicit BinaryDecoder(std::string_view data) : data_(data) {}

  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  std::string str();
  [[nodiscard]] bool done() const { return pos_ == data_.size(); }

 private:
  void need(std::size_t n) const;

  std::string_view data_;
  std::size_t pos_ = 0;
};

/// Writes the metadata sections (metrics, regions, call sites, cnodes,
/// machines, nodes, processes, threads) in the fixed CUBEBIN1 order.
void encode_metadata(BinaryEncoder& e, const Metadata& md);

/// Reads the metadata sections back; the returned metadata is validated
/// but NOT frozen (callers freeze or hand it to Experiment).
[[nodiscard]] std::unique_ptr<Metadata> decode_metadata(BinaryDecoder& d);

}  // namespace cube::detail
