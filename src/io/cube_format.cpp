#include "io/cube_format.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "common/digest.hpp"
#include "common/error.hpp"
#include "common/string_util.hpp"
#include "io/binary_format.hpp"
#include "io/xml_parser.hpp"
#include "io/xml_writer.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace cube {

namespace {

obs::Counter& xml_bytes_read_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "io.xml.bytes_read", obs::SampleUnit::Bytes);
  return c;
}

obs::Counter& sev_bytes_read_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "io.sev.bytes_read", obs::SampleUnit::Bytes);
  return c;
}

obs::Counter& xml_bytes_written_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "io.xml.bytes_written", obs::SampleUnit::Bytes);
  return c;
}

/// Adds the stream-position delta across `write` to io.xml.bytes_written
/// (-1 positions, from streams without a position, are skipped).
template <typename WriteFn>
void xml_write_counted(std::ostream& out, const WriteFn& write) {
  const auto before = out.tellp();
  write();
  const auto after = out.tellp();
  if (before != std::streampos(-1) && after != std::streampos(-1)) {
    xml_bytes_written_counter().add(static_cast<std::uint64_t>(after - before));
  }
}

constexpr const char* kFormatVersion = "1.0";
// Version 1.1 adds the by-reference form: a <metaref digest="..."/>
// element replaces the inline <metrics>/<program>/<system> sections.
constexpr const char* kRefFormatVersion = "1.1";
// Version 1.2 adds the columnar form: a <sevref digest="..."/> element
// replaces the <severity> section and points at a CUBESEV1 blob.
constexpr const char* kSevRefFormatVersion = "1.2";

// Severity values are written with enough digits to round-trip doubles.
std::string severity_to_string(Severity v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

void write_metric(XmlWriter& w, const Metric& m) {
  w.open_element("metric");
  w.attribute("id", m.index());
  w.open_element("disp_name");
  w.text(m.display_name());
  w.close_element();
  w.open_element("uniq_name");
  w.text(m.unique_name());
  w.close_element();
  w.open_element("uom");
  w.text(unit_name(m.unit()));
  w.close_element();
  if (!m.description().empty()) {
    w.open_element("descr");
    w.text(m.description());
    w.close_element();
  }
  for (const Metric* child : m.children()) {
    write_metric(w, *child);
  }
  w.close_element();
}

void write_cnode(XmlWriter& w, const Cnode& c) {
  w.open_element("cnode");
  w.attribute("id", c.index());
  w.attribute("csite", c.callsite().index());
  for (const Cnode* child : c.children()) {
    write_cnode(w, *child);
  }
  w.close_element();
}

std::string coords_to_string(const std::vector<long>& coords) {
  std::string out;
  for (std::size_t i = 0; i < coords.size(); ++i) {
    if (i > 0) out += ' ';
    out += std::to_string(coords[i]);
  }
  return out;
}

// Severity ids written here are the dense in-memory indices; in the
// by-reference form they therefore index the referenced metadata directly.
void write_severity_section(XmlWriter& w, const Experiment& experiment) {
  const Metadata& md = experiment.metadata();
  w.open_element("severity");
  const SeverityStore& sev = experiment.severity();
  for (MetricIndex m = 0; m < md.num_metrics(); ++m) {
    bool matrix_open = false;
    for (CnodeIndex c = 0; c < md.num_cnodes(); ++c) {
      bool all_zero = true;
      for (ThreadIndex t = 0; t < md.num_threads(); ++t) {
        if (sev.get(m, c, t) != 0.0) {
          all_zero = false;
          break;
        }
      }
      if (all_zero) continue;
      if (!matrix_open) {
        w.open_element("matrix");
        w.attribute("metric", m);
        matrix_open = true;
      }
      w.open_element("row");
      w.attribute("cnode", c);
      std::string values;
      for (ThreadIndex t = 0; t < md.num_threads(); ++t) {
        if (t > 0) values += ' ';
        values += severity_to_string(sev.get(m, c, t));
      }
      w.text(values);
      w.close_element();
    }
    if (matrix_open) w.close_element();
  }
  w.close_element();
}

void write_attr_section(XmlWriter& w, const Experiment& experiment) {
  for (const auto& [key, value] : experiment.attributes()) {
    w.open_element("attr");
    w.attribute("key", key);
    w.attribute("value", value);
    w.close_element();
  }
}

}  // namespace

void write_cube_xml_ref(const Experiment& experiment, std::ostream& out) {
  OBS_SPAN("io.xml.write");
  xml_write_counted(out, [&] {
    XmlWriter w(out);
    w.declaration();
    w.open_element("cube");
    w.attribute("version", std::string_view(kRefFormatVersion));
    write_attr_section(w, experiment);
    w.open_element("metaref");
    w.attribute("digest", digest_hex(experiment.metadata().digest()));
    w.close_element();
    write_severity_section(w, experiment);
    w.finish();
  });
}

void write_cube_xml_ref_file(const Experiment& experiment,
                             const std::string& path) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot create file '" + path + "'");
  write_cube_xml_ref(experiment, out);
  out.flush();
  if (!out) throw IoError("write to '" + path + "' failed");
}

std::string to_cube_xml_ref(const Experiment& experiment) {
  std::ostringstream os;
  write_cube_xml_ref(experiment, os);
  return os.str();
}

void write_cube_xml_sev_ref(const Experiment& experiment,
                            std::uint64_t sev_digest, std::ostream& out) {
  OBS_SPAN("io.xml.write");
  xml_write_counted(out, [&] {
    XmlWriter w(out);
    w.declaration();
    w.open_element("cube");
    w.attribute("version", std::string_view(kSevRefFormatVersion));
    write_attr_section(w, experiment);
    w.open_element("metaref");
    w.attribute("digest", digest_hex(experiment.metadata().digest()));
    w.close_element();
    w.open_element("sevref");
    w.attribute("digest", digest_hex(sev_digest));
    w.attribute("storage",
                experiment.severity().kind() == StorageKind::Dense
                    ? std::string_view("dense")
                    : std::string_view("sparse"));
    w.close_element();
    w.finish();
  });
}

void write_cube_xml_sev_ref_file(const Experiment& experiment,
                                 std::uint64_t sev_digest,
                                 const std::string& path) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot create file '" + path + "'");
  write_cube_xml_sev_ref(experiment, sev_digest, out);
  out.flush();
  if (!out) throw IoError("write to '" + path + "' failed");
}

std::string to_cube_xml_sev_ref(const Experiment& experiment,
                                std::uint64_t sev_digest) {
  std::ostringstream os;
  write_cube_xml_sev_ref(experiment, sev_digest, os);
  return os.str();
}

void write_cube_xml(const Experiment& experiment, std::ostream& out) {
  OBS_SPAN("io.xml.write");
  const Metadata& md = experiment.metadata();
  xml_write_counted(out, [&] {
  XmlWriter w(out);
  w.declaration();
  w.open_element("cube");
  w.attribute("version", std::string_view(kFormatVersion));

  write_attr_section(w, experiment);

  w.open_element("metrics");
  for (const Metric* root : md.metric_roots()) {
    write_metric(w, *root);
  }
  w.close_element();

  w.open_element("program");
  for (const auto& r : md.regions()) {
    w.open_element("region");
    w.attribute("id", r->index());
    w.attribute("name", r->name());
    w.attribute("mod", r->module());
    w.attribute("begin", r->begin_line());
    w.attribute("end", r->end_line());
    if (!r->description().empty()) w.attribute("descr", r->description());
    w.close_element();
  }
  for (const auto& cs : md.callsites()) {
    w.open_element("csite");
    w.attribute("id", cs->index());
    w.attribute("file", cs->file());
    w.attribute("line", cs->line());
    w.attribute("callee", cs->callee().index());
    w.close_element();
  }
  for (const Cnode* root : md.cnode_roots()) {
    write_cnode(w, *root);
  }
  w.close_element();

  w.open_element("system");
  for (const auto& machine : md.machines()) {
    w.open_element("machine");
    w.attribute("id", machine->index());
    w.attribute("name", machine->name());
    for (const SysNode* node : machine->nodes()) {
      w.open_element("node");
      w.attribute("id", node->index());
      w.attribute("name", node->name());
      for (const Process* process : node->processes()) {
        w.open_element("process");
        w.attribute("id", process->index());
        w.attribute("name", process->name());
        w.attribute("rank", process->rank());
        if (process->coords()) {
          w.attribute("coords", coords_to_string(*process->coords()));
        }
        for (const Thread* thread : process->threads()) {
          w.open_element("thread");
          w.attribute("id", thread->index());
          w.attribute("name", thread->name());
          w.attribute("tid", thread->thread_id());
          w.close_element();
        }
        w.close_element();
      }
      w.close_element();
    }
    w.close_element();
  }
  w.close_element();

  write_severity_section(w, experiment);

  w.finish();
  });
}

void write_cube_xml_file(const Experiment& experiment,
                         const std::string& path) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot create file '" + path + "'");
  write_cube_xml(experiment, out);
  out.flush();
  if (!out) throw IoError("write to '" + path + "' failed");
}

std::string to_cube_xml(const Experiment& experiment) {
  std::ostringstream os;
  write_cube_xml(experiment, os);
  return os.str();
}

namespace {

std::size_t parse_id(const XmlNode& node, std::string_view attr) {
  std::size_t v = 0;
  if (!parse_size(node.required_attr(attr), v)) {
    throw Error("element <" + node.name + "> has non-numeric attribute '" +
                std::string(attr) + "'");
  }
  return v;
}

long parse_long_attr(const XmlNode& node, std::string_view attr,
                     long fallback) {
  const auto v = node.attr(attr);
  if (!v) return fallback;
  double d = 0;
  if (!parse_double(*v, d)) {
    throw CheckError("parse.number",
                     "element <" + node.name + "> / attribute '" +
                         std::string(attr) + "'",
                     "value '" + std::string(*v) + "' is not a number");
  }
  return static_cast<long>(d);
}

/// Rebuilds a Metadata + severity from the parsed DOM.  File ids are
/// remapped to dense in-memory indices through the id maps.
class CubeDecoder {
 public:
  CubeDecoder(const XmlNode& root, StorageKind storage,
              const MetadataResolver& resolver,
              const SeverityResolver& sev_resolver)
      : root_(root),
        storage_(storage),
        resolver_(resolver),
        sev_resolver_(sev_resolver) {}

  Experiment decode() {
    if (root_.name != "cube") {
      throw Error("document element is <" + root_.name + ">, expected <cube>");
    }
    if (const XmlNode* ref = root_.child("metaref")) {
      return decode_by_reference(*ref);
    }
    auto md = std::make_unique<Metadata>();
    decode_metrics(*md);
    decode_program(*md);
    decode_system(*md);
    md->validate();

    Experiment experiment(std::move(md), storage_);
    decode_attributes(experiment);
    decode_severity(experiment);
    return experiment;
  }

 private:
  Experiment decode_by_reference(const XmlNode& ref) {
    const std::string hex(ref.required_attr("digest"));
    std::uint64_t digest = 0;
    if (!parse_hex64(hex, digest)) {
      throw CheckError("meta.bad-ref", "element <metaref>",
                       "malformed metadata digest '" + hex + "'");
    }
    if (!resolver_) {
      throw Error(
          "by-reference cube document requires a metadata resolver "
          "(metadata digest " +
          hex + ")");
    }
    auto md = resolver_(digest);
    if (md == nullptr) {
      throw CheckError("meta.unresolved-ref", "element <metaref>",
                       "no metadata blob resolves digest " + hex);
    }
    // Columnar form: the severity lives in a CUBESEV1 blob referenced by
    // digest; there is no <severity> section to decode.
    if (const XmlNode* sref = root_.child("sevref")) {
      return decode_columnar(*sref, std::move(md));
    }
    // Severity ids in the by-reference form ARE the dense indices of the
    // referenced metadata: the id maps become the identity.
    for (MetricIndex m = 0; m < md->num_metrics(); ++m) metric_ids_[m] = m;
    for (CnodeIndex c = 0; c < md->num_cnodes(); ++c) cnode_ids_[c] = c;
    Experiment experiment(std::move(md), storage_);
    decode_attributes(experiment);
    decode_severity(experiment);
    return experiment;
  }

  Experiment decode_columnar(const XmlNode& sref,
                             std::shared_ptr<const Metadata> md) {
    const std::string hex(sref.required_attr("digest"));
    std::uint64_t digest = 0;
    if (!parse_hex64(hex, digest)) {
      throw CheckError("sev.bad-ref", "element <sevref>",
                       "malformed severity digest '" + hex + "'");
    }
    if (!sev_resolver_) {
      throw Error(
          "columnar cube document requires a severity resolver "
          "(severity digest " +
          hex + ")");
    }
    const StorageKind blob_kind = sref.attr("storage").value_or("dense") ==
                                          std::string_view("sparse")
                                      ? StorageKind::Sparse
                                      : StorageKind::Dense;
    auto store = sev_resolver_(digest, blob_kind);
    if (store == nullptr) {
      throw CheckError("sev.unresolved-ref", "element <sevref>",
                       "no severity blob resolves digest " + hex);
    }
    Experiment experiment(std::move(md), std::move(store));
    decode_attributes(experiment);
    return experiment;
  }

  void decode_attributes(Experiment& e) const {
    for (const XmlNode* attr : root_.children_named("attr")) {
      e.set_attribute(std::string(attr->required_attr("key")),
                      std::string(attr->required_attr("value")));
    }
  }

  void decode_metric_tree(Metadata& md, const XmlNode& node,
                          const Metric* parent) {
    const std::size_t file_id = parse_id(node, "id");
    const std::string uniq = node.child_text("uniq_name");
    if (uniq.empty()) {
      throw Error("metric without <uniq_name>");
    }
    std::string disp = node.child_text("disp_name");
    if (disp.empty()) disp = uniq;
    const Metric& m =
        md.add_metric(parent, uniq, disp, parse_unit(node.child_text("uom")),
                      node.child_text("descr"));
    if (!metric_ids_.emplace(file_id, m.index()).second) {
      throw CheckError("forest.duplicate-id",
                       "metric #" + std::to_string(file_id),
                       "the metric id appears more than once in the document");
    }
    for (const XmlNode* child : node.children_named("metric")) {
      decode_metric_tree(md, *child, &m);
    }
  }

  void decode_metrics(Metadata& md) {
    const XmlNode* metrics = root_.child("metrics");
    if (metrics == nullptr) throw Error("missing <metrics> section");
    for (const XmlNode* m : metrics->children_named("metric")) {
      decode_metric_tree(md, *m, nullptr);
    }
  }

  void decode_cnode_tree(Metadata& md, const XmlNode& node,
                         const Cnode* parent) {
    const std::size_t file_id = parse_id(node, "id");
    const std::size_t csite_id = parse_id(node, "csite");
    const auto cs = callsite_ids_.find(csite_id);
    if (cs == callsite_ids_.end()) {
      throw CheckError("ref.dangling-callsite",
                       "cnode #" + std::to_string(file_id),
                       "cnode references csite id " +
                           std::to_string(csite_id) +
                           " which the <program> section does not define");
    }
    const Cnode& c =
        md.add_cnode(parent, *md.callsites()[cs->second]);
    if (!cnode_ids_.emplace(file_id, c.index()).second) {
      throw CheckError("forest.duplicate-id",
                       "cnode #" + std::to_string(file_id),
                       "the cnode id appears more than once in the document");
    }
    for (const XmlNode* child : node.children_named("cnode")) {
      decode_cnode_tree(md, *child, &c);
    }
  }

  void decode_program(Metadata& md) {
    const XmlNode* program = root_.child("program");
    if (program == nullptr) throw Error("missing <program> section");
    for (const XmlNode* r : program->children_named("region")) {
      const std::size_t file_id = parse_id(*r, "id");
      const Region& region = md.add_region(
          std::string(r->required_attr("name")),
          std::string(r->required_attr("mod")),
          parse_long_attr(*r, "begin", -1), parse_long_attr(*r, "end", -1),
          std::string(r->attr("descr").value_or("")));
      if (!region_ids_.emplace(file_id, region.index()).second) {
        throw CheckError("forest.duplicate-id",
                       "region #" + std::to_string(file_id),
                       "the region id appears more than once in the document");
      }
    }
    for (const XmlNode* cs : program->children_named("csite")) {
      const std::size_t file_id = parse_id(*cs, "id");
      const std::size_t callee_id = parse_id(*cs, "callee");
      const auto callee = region_ids_.find(callee_id);
      if (callee == region_ids_.end()) {
        throw CheckError("ref.dangling-callee",
                         "csite #" + std::to_string(file_id),
                         "csite references callee region id " +
                             std::to_string(callee_id) +
                             " which the <program> section does not define");
      }
      const CallSite& site = md.add_callsite(
          *md.regions()[callee->second],
          std::string(cs->attr("file").value_or("")),
          parse_long_attr(*cs, "line", -1));
      if (!callsite_ids_.emplace(file_id, site.index()).second) {
        throw CheckError("forest.duplicate-id",
                       "csite #" + std::to_string(file_id),
                       "the csite id appears more than once in the document");
      }
    }
    for (const XmlNode* c : program->children_named("cnode")) {
      decode_cnode_tree(md, *c, nullptr);
    }
  }

  void decode_system(Metadata& md) {
    const XmlNode* system = root_.child("system");
    if (system == nullptr) throw Error("missing <system> section");
    for (const XmlNode* mn : system->children_named("machine")) {
      Machine& machine =
          md.add_machine(std::string(mn->attr("name").value_or("machine")));
      for (const XmlNode* nn : mn->children_named("node")) {
        SysNode& node =
            md.add_node(machine, std::string(nn->attr("name").value_or(
                                     "node")));
        for (const XmlNode* pn : nn->children_named("process")) {
          Process& process = md.add_process(
              node, std::string(pn->attr("name").value_or("process")),
              parse_long_attr(*pn, "rank", 0));
          if (const auto coords = pn->attr("coords")) {
            std::vector<long> cs;
            for (const std::string& piece : split(*coords, ' ')) {
              if (piece.empty()) continue;
              double d = 0;
              if (!parse_double(piece, d)) {
                throw CheckError(
                    "parse.number",
                    "process rank " + std::to_string(process.rank()) +
                        " / coordinate #" + std::to_string(cs.size()),
                    "token '" + piece + "' in coords '" +
                        std::string(*coords) + "' is not a number");
              }
              cs.push_back(static_cast<long>(d));
            }
            process.set_coords(std::move(cs));
          }
          for (const XmlNode* tn : pn->children_named("thread")) {
            const std::size_t file_id = parse_id(*tn, "id");
            const Thread& thread = md.add_thread(
                process, std::string(tn->attr("name").value_or("thread")),
                parse_long_attr(*tn, "tid", 0));
            if (!thread_ids_.emplace(file_id, thread.index()).second) {
              throw CheckError("forest.duplicate-id",
                       "thread #" + std::to_string(file_id),
                       "the thread id appears more than once in the document");
            }
          }
        }
      }
    }
  }

  void decode_severity(Experiment& e) const {
    const XmlNode* severity = root_.child("severity");
    if (severity == nullptr) return;  // an all-zero experiment is valid
    const std::size_t num_threads = e.metadata().num_threads();
    for (const XmlNode* matrix : severity->children_named("matrix")) {
      const std::size_t metric_file_id = parse_id(*matrix, "metric");
      const auto m = metric_ids_.find(metric_file_id);
      if (m == metric_ids_.end()) {
        throw CheckError("ref.dangling-metric",
                         "severity matrix metric #" +
                             std::to_string(metric_file_id),
                         "matrix references a metric id the <metrics> "
                         "section does not define");
      }
      for (const XmlNode* row : matrix->children_named("row")) {
        sev_bytes_read_counter().add(row->text.size());
        const std::size_t cnode_file_id = parse_id(*row, "cnode");
        const auto c = cnode_ids_.find(cnode_file_id);
        if (c == cnode_ids_.end()) {
          throw CheckError("ref.dangling-cnode",
                           "metric #" + std::to_string(metric_file_id) +
                               " / severity row cnode #" +
                               std::to_string(cnode_file_id),
                           "row references a cnode id the <program> "
                           "section does not define");
        }
        std::size_t t = 0;
        std::istringstream tokens{row->text};
        std::string piece;
        while (tokens >> piece) {
          if (t >= num_threads) {
            throw CheckError(
                "sev.out-of-range",
                "metric #" + std::to_string(metric_file_id) + " / cnode #" +
                    std::to_string(cnode_file_id) + " / thread #" +
                    std::to_string(t),
                "severity row holds more than the " +
                    std::to_string(num_threads) +
                    " values the system dimension admits");
          }
          double v = 0;
          if (!parse_double(piece, v)) {
            throw CheckError(
                "sev.malformed-value",
                "metric #" + std::to_string(metric_file_id) + " / cnode #" +
                    std::to_string(cnode_file_id) + " / thread #" +
                    std::to_string(t),
                "severity token '" + piece + "' is not a number");
          }
          // Threads were created in document order: file thread position ==
          // in-memory index order within the row.
          if (v != 0.0) e.severity().set(m->second, c->second, t, v);
          ++t;
        }
      }
    }
  }

  const XmlNode& root_;
  StorageKind storage_;
  const MetadataResolver& resolver_;
  const SeverityResolver& sev_resolver_;
  std::map<std::size_t, MetricIndex> metric_ids_;
  std::map<std::size_t, std::size_t> region_ids_;
  std::map<std::size_t, std::size_t> callsite_ids_;
  std::map<std::size_t, CnodeIndex> cnode_ids_;
  std::map<std::size_t, ThreadIndex> thread_ids_;
};

}  // namespace

Experiment read_cube_xml(std::string_view xml, StorageKind storage,
                         const MetadataResolver& resolver,
                         const SeverityResolver& sev_resolver) {
  OBS_SPAN("io.xml.read");
  xml_bytes_read_counter().add(xml.size());
  const auto root = parse_xml(xml);
  return CubeDecoder(*root, storage, resolver, sev_resolver).decode();
}

Experiment read_cube_xml_file(const std::string& path, StorageKind storage,
                              const MetadataResolver& resolver,
                              const SeverityResolver& sev_resolver) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return read_cube_xml(buffer.str(), storage, resolver, sev_resolver);
}

namespace {

/// The repository directory an experiment file belongs to: the file's own
/// directory, or — for the sharded exp/<ab>/ layout, where files sit two
/// levels below the root — the nearest ancestor containing a repository
/// marker (index/, index.xml, or a meta/ blob directory).
std::filesystem::path repo_root_for(const std::filesystem::path& file) {
  std::error_code ec;
  std::filesystem::path dir = file.parent_path();
  std::filesystem::path probe = dir;
  for (int depth = 0; depth < 3 && !probe.empty(); ++depth) {
    if (std::filesystem::exists(probe / "index", ec) ||
        std::filesystem::exists(probe / "index.xml", ec) ||
        std::filesystem::is_directory(probe / "meta", ec)) {
      return probe;
    }
    if (probe == probe.parent_path()) break;
    probe = probe.parent_path();
  }
  return dir;
}

}  // namespace

Experiment read_experiment_file(const std::string& path, StorageKind storage,
                                const MetadataResolver& resolver,
                                const SeverityResolver& sev_resolver) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string data = buffer.str();
  // Files written by the repository reference their metadata (and, for
  // columnar envelopes, severity) blobs; resolve against the enclosing
  // repository's blob directories unless the caller supplied resolvers.
  std::filesystem::path root;
  if (!resolver || !sev_resolver) root = repo_root_for(path);
  const MetadataResolver effective =
      resolver ? resolver : directory_resolver(root);
  const SeverityResolver effective_sev =
      sev_resolver ? sev_resolver : directory_severity_resolver(root);
  if (data.size() >= 8 && (data.compare(0, 8, "CUBEBIN1") == 0 ||
                           data.compare(0, 8, "CUBEBIN2") == 0)) {
    return read_cube_binary(data, storage, effective);
  }
  return read_cube_xml(data, storage, effective, effective_sev);
}

}  // namespace cube
