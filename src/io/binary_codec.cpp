#include "io/binary_codec.hpp"

#include <cstring>
#include <ostream>
#include <vector>

#include "common/error.hpp"

namespace cube::detail {

void BinaryEncoder::u32(std::uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)));
  out_.write(buf, 4);
}

void BinaryEncoder::u64(std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)));
  out_.write(buf, 8);
}

void BinaryEncoder::i64(std::int64_t v) {
  u64(static_cast<std::uint64_t>(v));
}

void BinaryEncoder::f64(double v) {
  static_assert(sizeof(double) == 8);
  char buf[8];
  std::memcpy(buf, &v, 8);
  out_.write(buf, 8);
}

void BinaryEncoder::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  out_.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void BinaryDecoder::need(std::size_t n) const {
  if (pos_ + n > data_.size()) {
    throw CheckError("file.truncated",
                     "byte offset " + std::to_string(pos_),
                     "stream ends " + std::to_string(n) +
                         " byte(s) short of the next field");
  }
}

std::uint32_t BinaryDecoder::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t BinaryDecoder::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

std::int64_t BinaryDecoder::i64() { return static_cast<std::int64_t>(u64()); }

double BinaryDecoder::f64() {
  need(8);
  double v = 0;
  std::memcpy(&v, data_.data() + pos_, 8);
  pos_ += 8;
  return v;
}

std::string BinaryDecoder::str() {
  const std::uint32_t len = u32();
  need(len);
  std::string s(data_.substr(pos_, len));
  pos_ += len;
  return s;
}

namespace {

constexpr std::uint32_t kNoParentId = 0xFFFFFFFFu;

}  // namespace

void encode_metadata(BinaryEncoder& e, const Metadata& md) {
  e.u32(static_cast<std::uint32_t>(md.metrics().size()));
  for (const auto& m : md.metrics()) {
    e.u32(m->parent() != nullptr
              ? static_cast<std::uint32_t>(m->parent()->index())
              : kNoParentId);
    e.str(m->unique_name());
    e.str(m->display_name());
    e.u32(static_cast<std::uint32_t>(m->unit()));
    e.str(m->description());
  }

  e.u32(static_cast<std::uint32_t>(md.regions().size()));
  for (const auto& r : md.regions()) {
    e.str(r->name());
    e.str(r->module());
    e.i64(r->begin_line());
    e.i64(r->end_line());
    e.str(r->description());
  }

  e.u32(static_cast<std::uint32_t>(md.callsites().size()));
  for (const auto& cs : md.callsites()) {
    e.u32(static_cast<std::uint32_t>(cs->callee().index()));
    e.str(cs->file());
    e.i64(cs->line());
  }

  e.u32(static_cast<std::uint32_t>(md.cnodes().size()));
  for (const auto& c : md.cnodes()) {
    e.u32(c->parent() != nullptr
              ? static_cast<std::uint32_t>(c->parent()->index())
              : kNoParentId);
    e.u32(static_cast<std::uint32_t>(c->callsite().index()));
  }

  e.u32(static_cast<std::uint32_t>(md.machines().size()));
  for (const auto& m : md.machines()) e.str(m->name());
  e.u32(static_cast<std::uint32_t>(md.nodes().size()));
  for (const auto& n : md.nodes()) {
    e.u32(static_cast<std::uint32_t>(n->machine().index()));
    e.str(n->name());
  }
  e.u32(static_cast<std::uint32_t>(md.processes().size()));
  for (const auto& p : md.processes()) {
    e.u32(static_cast<std::uint32_t>(p->node().index()));
    e.str(p->name());
    e.i64(p->rank());
    const auto& coords = p->coords();
    e.u32(coords ? static_cast<std::uint32_t>(coords->size()) : 0);
    if (coords) {
      for (const long c : *coords) e.i64(c);
    }
  }
  e.u32(static_cast<std::uint32_t>(md.threads().size()));
  for (const auto& t : md.threads()) {
    e.u32(static_cast<std::uint32_t>(t->process().index()));
    e.str(t->name());
    e.i64(t->thread_id());
  }
}

std::unique_ptr<Metadata> decode_metadata(BinaryDecoder& d) {
  auto md = std::make_unique<Metadata>();

  const std::uint32_t num_metrics = d.u32();
  for (std::uint32_t i = 0; i < num_metrics; ++i) {
    const std::uint32_t parent = d.u32();
    std::string uniq = d.str();
    std::string disp = d.str();
    const auto unit = static_cast<Unit>(d.u32());
    std::string descr = d.str();
    const Metric* parent_ptr =
        parent == kNoParentId ? nullptr : md->metrics().at(parent).get();
    md->add_metric(parent_ptr, std::move(uniq), std::move(disp), unit,
                   std::move(descr));
  }

  const std::uint32_t num_regions = d.u32();
  for (std::uint32_t i = 0; i < num_regions; ++i) {
    std::string name = d.str();
    std::string mod = d.str();
    const long begin = static_cast<long>(d.i64());
    const long end = static_cast<long>(d.i64());
    std::string descr = d.str();
    md->add_region(std::move(name), std::move(mod), begin, end,
                   std::move(descr));
  }

  const std::uint32_t num_callsites = d.u32();
  for (std::uint32_t i = 0; i < num_callsites; ++i) {
    const std::uint32_t callee = d.u32();
    std::string file = d.str();
    const long line = static_cast<long>(d.i64());
    md->add_callsite(*md->regions().at(callee), std::move(file), line);
  }

  const std::uint32_t num_cnodes = d.u32();
  for (std::uint32_t i = 0; i < num_cnodes; ++i) {
    const std::uint32_t parent = d.u32();
    const std::uint32_t csite = d.u32();
    const Cnode* parent_ptr =
        parent == kNoParentId ? nullptr : md->cnodes().at(parent).get();
    md->add_cnode(parent_ptr, *md->callsites().at(csite));
  }

  const std::uint32_t num_machines = d.u32();
  for (std::uint32_t i = 0; i < num_machines; ++i) {
    md->add_machine(d.str());
  }
  const std::uint32_t num_nodes = d.u32();
  for (std::uint32_t i = 0; i < num_nodes; ++i) {
    const std::uint32_t machine = d.u32();
    md->add_node(*md->machines().at(machine), d.str());
  }
  const std::uint32_t num_processes = d.u32();
  for (std::uint32_t i = 0; i < num_processes; ++i) {
    const std::uint32_t node = d.u32();
    std::string name = d.str();
    const long rank = static_cast<long>(d.i64());
    Process& p = md->add_process(*md->nodes().at(node), std::move(name), rank);
    const std::uint32_t num_coords = d.u32();
    if (num_coords > 0) {
      std::vector<long> coords;
      coords.reserve(num_coords);
      for (std::uint32_t k = 0; k < num_coords; ++k) {
        coords.push_back(static_cast<long>(d.i64()));
      }
      p.set_coords(std::move(coords));
    }
  }
  const std::uint32_t num_threads = d.u32();
  for (std::uint32_t i = 0; i < num_threads; ++i) {
    const std::uint32_t process = d.u32();
    std::string name = d.str();
    const long tid = static_cast<long>(d.i64());
    md->add_thread(*md->processes().at(process), std::move(name), tid);
  }

  md->validate();
  return md;
}

}  // namespace cube::detail
