#include "io/repository.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "common/digest.hpp"
#include "common/error.hpp"
#include "io/binary_format.hpp"
#include "io/cube_format.hpp"
#include "io/xml_parser.hpp"
#include "io/xml_writer.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace cube {

namespace {

constexpr const char* kIndexFile = "index.xml";
constexpr const char* kMetaDir = "meta";

obs::Counter& loads_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("repo.loads");
  return c;
}

obs::Counter& stores_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("repo.stores");
  return c;
}

obs::Gauge& entries_gauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::global().gauge("repo.entries");
  return g;
}

std::string sanitize(const std::string& name) {
  std::string out;
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
        c == '_' || c == '.') {
      out.push_back(c);
    } else {
      out.push_back('_');
    }
  }
  if (out.empty()) out = "experiment";
  // Keep ids readable: derived experiments can have very long provenance
  // names.
  if (out.size() > 40) out.resize(40);
  return out;
}

}  // namespace

ExperimentRepository::ExperimentRepository(std::filesystem::path directory)
    : directory_(std::move(directory)) {
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
  if (ec) {
    throw IoError("cannot create repository directory '" +
                  directory_.string() + "': " + ec.message());
  }
  if (std::filesystem::exists(directory_ / kIndexFile)) {
    read_index();
  } else {
    write_index();
  }
}

void ExperimentRepository::read_index() {
  std::ifstream in(directory_ / kIndexFile);
  if (!in) {
    throw IoError("cannot open repository index in '" + directory_.string() +
                  "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  index_digest_ = fnv1a(buffer.str());
  const auto root = parse_xml(buffer.str());
  if (root->name != "repository") {
    throw Error("'" + directory_.string() + "' is not a CUBE repository");
  }
  entries_.clear();
  for (const XmlNode* node : root->children_named("entry")) {
    RepoEntry entry;
    entry.id = std::string(node->required_attr("id"));
    entry.file = std::string(node->required_attr("file"));
    entry.format = node->attr("format").value_or("xml") == "binary"
                       ? RepoFormat::Binary
                       : RepoFormat::Xml;
    entry.meta = std::string(node->attr("meta").value_or(""));
    for (const XmlNode* attr : node->children_named("attr")) {
      entry.attributes[std::string(attr->required_attr("key"))] =
          std::string(attr->required_attr("value"));
    }
    entries_.push_back(std::move(entry));
  }
}

void ExperimentRepository::write_index() const {
  // Crash safety: write the full index to a temporary file in the same
  // directory, then atomically rename it over index.xml.  A crash at any
  // point leaves either the old or the new index intact, never a torn
  // one.
  const std::filesystem::path target = directory_ / kIndexFile;
  const std::filesystem::path temp =
      directory_ / (std::string(kIndexFile) + ".tmp");
  // Render to a buffer first: the digest of the bytes about to land on
  // disk is what refresh() later compares the on-disk index against.
  std::ostringstream rendered;
  {
    XmlWriter w(rendered);
    w.declaration();
    w.open_element("repository");
    for (const RepoEntry& entry : entries_) {
      w.open_element("entry");
      w.attribute("id", entry.id);
      w.attribute("file", entry.file);
      w.attribute("format", entry.format == RepoFormat::Binary
                                ? std::string_view("binary")
                                : std::string_view("xml"));
      if (!entry.meta.empty()) w.attribute("meta", entry.meta);
      for (const auto& [key, value] : entry.attributes) {
        w.open_element("attr");
        w.attribute("key", key);
        w.attribute("value", value);
        w.close_element();
      }
      w.close_element();
    }
    w.finish();
  }
  const std::string bytes = rendered.str();
  {
    std::ofstream out(temp, std::ios::trunc | std::ios::binary);
    if (!out) {
      throw IoError("cannot write repository index in '" +
                    directory_.string() + "'");
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::error_code cleanup;
      std::filesystem::remove(temp, cleanup);
      throw IoError("repository index write failed");
    }
  }
  std::error_code ec;
  std::filesystem::rename(temp, target, ec);
  if (ec) {
    std::error_code cleanup;
    std::filesystem::remove(temp, cleanup);
    throw IoError("cannot replace repository index '" + target.string() +
                  "': " + ec.message());
  }
  index_digest_ = fnv1a(bytes);
}

std::string ExperimentRepository::unique_id(const std::string& base) const {
  const auto taken = [this](const std::string& candidate) {
    for (const RepoEntry& e : entries_) {
      if (e.id == candidate) return true;
    }
    return false;
  };
  if (!taken(base)) return base;
  for (std::size_t k = 2;; ++k) {
    const std::string candidate = base + "-" + std::to_string(k);
    if (!taken(candidate)) return candidate;
  }
}

MetadataResolver ExperimentRepository::resolver() const {
  return directory_resolver(directory_, &interner_);
}

std::string ExperimentRepository::ensure_blob(const Metadata& metadata) const {
  const std::string hex = digest_hex(metadata.digest());
  const std::filesystem::path dir = directory_ / kMetaDir;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw IoError("cannot create metadata directory '" + dir.string() +
                  "': " + ec.message());
  }
  const std::filesystem::path blob = dir / meta_blob_name(metadata.digest());
  if (!std::filesystem::exists(blob)) {
    // Blobs are immutable once written; write-then-rename so a crash never
    // leaves a torn blob under its final content-addressed name.
    const std::filesystem::path temp = blob.string() + ".tmp";
    write_cube_meta_file(metadata, temp.string());
    std::filesystem::rename(temp, blob, ec);
    if (ec) {
      std::error_code cleanup;
      std::filesystem::remove(temp, cleanup);
      throw IoError("cannot place metadata blob '" + blob.string() +
                    "': " + ec.message());
    }
  }
  return hex;
}

bool ExperimentRepository::blob_referenced(const std::string& hex) const {
  for (const RepoEntry& e : entries_) {
    if (e.meta == hex) return true;
  }
  return false;
}

void ExperimentRepository::write_experiment_file(const Experiment& experiment,
                                                 const RepoEntry& entry) const {
  const std::filesystem::path path = directory_ / entry.file;
  if (entry.format == RepoFormat::Binary) {
    write_cube_binary_ref_file(experiment, path.string());
  } else {
    write_cube_xml_ref_file(experiment, path.string());
  }
}

std::string ExperimentRepository::store(const Experiment& experiment,
                                        RepoFormat format) {
  OBS_SPAN("repo.store");
  std::unique_lock lock(mutex_);
  const std::string id = unique_id(sanitize(
      experiment.name().empty() ? "experiment" : experiment.name()));
  RepoEntry entry;
  entry.id = id;
  entry.file = id + (format == RepoFormat::Binary ? ".cubx" : ".cube");
  entry.format = format;
  entry.meta = ensure_blob(experiment.metadata());
  entry.attributes =
      std::map<std::string, std::string>(experiment.attributes().begin(),
                                         experiment.attributes().end());

  write_experiment_file(experiment, entry);
  entries_.push_back(std::move(entry));
  write_index();
  generation_.fetch_add(1, std::memory_order_release);
  // Future loads of this digest should share the instance just stored.
  (void)interner_.intern(experiment.metadata_ptr());
  stores_counter().add(1);
  entries_gauge().set(static_cast<double>(entries_.size()));
  return id;
}

Experiment ExperimentRepository::load(const std::string& id) const {
  std::filesystem::path path;
  RepoFormat format = RepoFormat::Xml;
  {
    std::shared_lock lock(mutex_);
    bool found = false;
    for (const RepoEntry& entry : entries_) {
      if (entry.id == id) {
        path = directory_ / entry.file;
        format = entry.format;
        found = true;
        break;
      }
    }
    if (!found) {
      throw Error("repository has no experiment with id '" + id + "'");
    }
  }
  return load_path(path, format);
}

Experiment ExperimentRepository::load_path(const std::filesystem::path& path,
                                           RepoFormat format,
                                           StorageKind storage) const {
  OBS_SPAN("repo.load");
  loads_counter().add(1);
  Experiment experiment =
      format == RepoFormat::Binary
          ? read_cube_binary_file(path.string(), storage, resolver())
          : read_cube_xml_file(path.string(), storage, resolver());
  if (validator_) validator_(experiment, path.string());
  return experiment;
}

bool ExperimentRepository::refresh() {
  std::unique_lock lock(mutex_);
  std::uint64_t on_disk = 0;
  try {
    on_disk = digest_file(directory_ / kIndexFile);
  } catch (const Error&) {
    throw IoError("cannot re-read repository index in '" +
                  directory_.string() + "'");
  }
  if (on_disk == index_digest_) return false;
  read_index();
  generation_.fetch_add(1, std::memory_order_release);
  entries_gauge().set(static_cast<double>(entries_.size()));
  return true;
}

std::vector<RepoEntry> ExperimentRepository::entries_snapshot() const {
  std::shared_lock lock(mutex_);
  return entries_;
}

std::size_t ExperimentRepository::migrate() {
  std::unique_lock lock(mutex_);
  std::size_t rewritten = 0;
  for (RepoEntry& entry : entries_) {
    if (!entry.meta.empty()) continue;
    const std::filesystem::path path = directory_ / entry.file;
    const Experiment experiment = load_path(path, entry.format);
    entry.meta = ensure_blob(experiment.metadata());
    write_experiment_file(experiment, entry);
    (void)interner_.intern(experiment.metadata_ptr());
    ++rewritten;
  }
  if (rewritten > 0) {
    write_index();
    generation_.fetch_add(1, std::memory_order_release);
  }
  return rewritten;
}

void ExperimentRepository::remove(const std::string& id) {
  std::unique_lock lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->id == id) {
      std::error_code ec;
      std::filesystem::remove(directory_ / it->file, ec);
      const std::string meta = it->meta;
      entries_.erase(it);
      if (!meta.empty() && !blob_referenced(meta)) {
        std::filesystem::remove(
            directory_ / kMetaDir / (meta + ".meta"), ec);
      }
      write_index();
      generation_.fetch_add(1, std::memory_order_release);
      return;
    }
  }
  throw Error("repository has no experiment with id '" + id + "'");
}

std::vector<std::string> ExperimentRepository::orphan_blobs() const {
  std::shared_lock lock(mutex_);
  std::vector<std::string> orphans;
  const std::filesystem::path dir = directory_ / kMetaDir;
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) return orphans;
  for (const auto& file : std::filesystem::directory_iterator(dir, ec)) {
    const std::filesystem::path& p = file.path();
    if (p.extension() != ".meta") continue;
    if (!blob_referenced(p.stem().string())) {
      orphans.push_back((std::filesystem::path(kMetaDir) /
                         p.filename()).string());
    }
  }
  return orphans;
}

std::size_t ExperimentRepository::remove_orphan_blobs() {
  std::size_t removed = 0;
  for (const std::string& rel : orphan_blobs()) {
    std::error_code ec;
    if (std::filesystem::remove(directory_ / rel, ec) && !ec) ++removed;
  }
  return removed;
}

std::vector<RepoEntry> ExperimentRepository::query(
    const std::string& key, const std::string& value) const {
  std::shared_lock lock(mutex_);
  std::vector<RepoEntry> out;
  for (const RepoEntry& entry : entries_) {
    const auto it = entry.attributes.find(key);
    if (it != entry.attributes.end() && it->second == value) {
      out.push_back(entry);
    }
  }
  return out;
}

std::vector<Experiment> ExperimentRepository::load_all(
    const std::vector<RepoEntry>& selection) const {
  std::vector<Experiment> out;
  out.reserve(selection.size());
  for (const RepoEntry& entry : selection) {
    out.push_back(load(entry.id));
  }
  return out;
}

}  // namespace cube
