#include "io/repository.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/digest.hpp"
#include "common/error.hpp"
#include "common/string_util.hpp"
#include "io/binary_format.hpp"
#include "io/cube_format.hpp"
#include "io/xml_parser.hpp"
#include "io/xml_writer.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace cube {

namespace {

constexpr const char* kIndexFile = "index.xml";
constexpr const char* kMetaDir = "meta";
constexpr const char* kSevDir = "sev";
constexpr const char* kExpDir = "exp";

obs::Counter& loads_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("repo.loads");
  return c;
}

obs::Counter& stores_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("repo.stores");
  return c;
}

obs::Gauge& entries_gauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::global().gauge("repo.entries");
  return g;
}

std::string sanitize(const std::string& name) {
  std::string out;
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
        c == '_' || c == '.') {
      out.push_back(c);
    } else {
      out.push_back('_');
    }
  }
  if (out.empty()) out = "experiment";
  // Keep ids readable: derived experiments can have very long provenance
  // names.
  if (out.size() > 40) out.resize(40);
  return out;
}

/// Two-hex-digit shard directory name for a blob file name ("<016x>.ext")
/// or bare hex digest: its first two characters.
std::string shard_of(const std::string& hex_name) {
  return hex_name.substr(0, 2);
}

/// Shard directory for an experiment id: first two hex digits of the id's
/// FNV-1a digest (ids themselves are not hex, so they are hashed first).
std::string id_shard(const std::string& id) {
  return digest_hex(fnv1a(id)).substr(0, 2);
}

const char* extension_for(RepoFormat format) {
  switch (format) {
    case RepoFormat::Binary:
      return ".cubx";
    case RepoFormat::Columnar:
      return ".cubc";
    case RepoFormat::Xml:
      break;
  }
  return ".cube";
}

void ensure_parent_dir(const std::filesystem::path& file) {
  const std::filesystem::path dir = file.parent_path();
  if (dir.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw IoError("cannot create directory '" + dir.string() +
                  "': " + ec.message());
  }
}

/// Atomically places `bytes` at `target` (write temp + rename), creating
/// parent directories.  No-op if the target already exists (blobs are
/// immutable and content-addressed).
void place_blob(const std::filesystem::path& target,
                const std::string& bytes) {
  if (std::filesystem::exists(target)) return;
  ensure_parent_dir(target);
  const std::filesystem::path temp = target.string() + ".tmp";
  {
    std::ofstream out(temp, std::ios::trunc | std::ios::binary);
    if (!out) {
      throw IoError("cannot write blob '" + temp.string() + "'");
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::error_code cleanup;
      std::filesystem::remove(temp, cleanup);
      throw IoError("blob write failed for '" + target.string() + "'");
    }
  }
  std::error_code ec;
  std::filesystem::rename(temp, target, ec);
  if (ec) {
    std::error_code cleanup;
    std::filesystem::remove(temp, cleanup);
    throw IoError("cannot place blob '" + target.string() +
                  "': " + ec.message());
  }
}

}  // namespace

ExperimentRepository::ExperimentRepository(std::filesystem::path directory,
                                           RepoLayout layout)
    : directory_(std::move(directory)) {
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
  if (ec) {
    throw IoError("cannot create repository directory '" +
                  directory_.string() + "': " + ec.message());
  }
  if (SegmentedIndex::present(directory_)) {
    layout_ = RepoLayout::Sharded;
    index_ = std::make_unique<SegmentedIndex>(directory_);
    index_->assert_owned();  // construction: no concurrent access yet
    index_->load(entries_);
  } else if (std::filesystem::exists(directory_ / kIndexFile)) {
    layout_ = RepoLayout::Legacy;
    read_index();
  } else if (layout == RepoLayout::Legacy) {
    layout_ = RepoLayout::Legacy;
    write_index();
  } else {
    layout_ = RepoLayout::Sharded;
    index_ = std::make_unique<SegmentedIndex>(directory_);
    index_->assert_owned();  // construction: no concurrent access yet
    index_->create();
  }
  rebuild_ids();
  entries_gauge().set(static_cast<double>(entries_.size()));
}

void ExperimentRepository::read_index() {
  std::ifstream in(directory_ / kIndexFile);
  if (!in) {
    throw IoError("cannot open repository index in '" + directory_.string() +
                  "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  index_digest_ = fnv1a(buffer.str());
  const auto root = parse_xml(buffer.str());
  if (root->name != "repository") {
    throw Error("'" + directory_.string() + "' is not a CUBE repository");
  }
  entries_.clear();
  for (const XmlNode* node : root->children_named("entry")) {
    RepoEntry entry;
    entry.id = std::string(node->required_attr("id"));
    entry.file = std::string(node->required_attr("file"));
    entry.format = parse_repo_format(node->attr("format").value_or("xml"));
    entry.meta = std::string(node->attr("meta").value_or(""));
    entry.sev = std::string(node->attr("sev").value_or(""));
    for (const XmlNode* attr : node->children_named("attr")) {
      entry.attributes[std::string(attr->required_attr("key"))] =
          std::string(attr->required_attr("value"));
    }
    entries_.push_back(std::move(entry));
  }
}

void ExperimentRepository::write_index() const {
  // Crash safety: write the full index to a temporary file in the same
  // directory, then atomically rename it over index.xml.  A crash at any
  // point leaves either the old or the new index intact, never a torn
  // one.
  const std::filesystem::path target = directory_ / kIndexFile;
  const std::filesystem::path temp =
      directory_ / (std::string(kIndexFile) + ".tmp");
  // Render to a buffer first: the digest of the bytes about to land on
  // disk is what refresh() later compares the on-disk index against.
  std::ostringstream rendered;
  {
    XmlWriter w(rendered);
    w.declaration();
    w.open_element("repository");
    for (const RepoEntry& entry : entries_) {
      w.open_element("entry");
      w.attribute("id", entry.id);
      w.attribute("file", entry.file);
      w.attribute("format", repo_format_name(entry.format));
      if (!entry.meta.empty()) w.attribute("meta", entry.meta);
      if (!entry.sev.empty()) w.attribute("sev", entry.sev);
      for (const auto& [key, value] : entry.attributes) {
        w.open_element("attr");
        w.attribute("key", key);
        w.attribute("value", value);
        w.close_element();
      }
      w.close_element();
    }
    w.finish();
  }
  const std::string bytes = rendered.str();
  {
    std::ofstream out(temp, std::ios::trunc | std::ios::binary);
    if (!out) {
      throw IoError("cannot write repository index in '" +
                    directory_.string() + "'");
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::error_code cleanup;
      std::filesystem::remove(temp, cleanup);
      throw IoError("repository index write failed");
    }
  }
  std::error_code ec;
  std::filesystem::rename(temp, target, ec);
  if (ec) {
    std::error_code cleanup;
    std::filesystem::remove(temp, cleanup);
    throw IoError("cannot replace repository index '" + target.string() +
                  "': " + ec.message());
  }
  index_digest_ = fnv1a(bytes);
}

void ExperimentRepository::rebuild_ids() {
  ids_.clear();
  ids_.reserve(entries_.size());
  for (const RepoEntry& e : entries_) ids_.insert(e.id);
}

void ExperimentRepository::index_store(const RepoEntry& entry) {
  if (index_) {
    index_->assert_owned();
    index_->append(entry);
  } else {
    write_index();
  }
}

std::string ExperimentRepository::unique_id(const std::string& base) const {
  if (!ids_.count(base)) return base;
  for (std::size_t k = 2;; ++k) {
    const std::string candidate = base + "-" + std::to_string(k);
    if (!ids_.count(candidate)) return candidate;
  }
}

MetadataResolver ExperimentRepository::resolver() const {
  return directory_resolver(directory_, &interner_);
}

SeverityResolver ExperimentRepository::sev_resolver() const {
  return directory_severity_resolver(directory_);
}

std::optional<SevBlobStat> ExperimentRepository::stat_sev_blob(
    std::uint64_t digest) const {
  const std::filesystem::path path = find_sev_blob(digest_hex(digest));
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return std::nullopt;
  return stat_cube_sev_file(path);
}

std::filesystem::path ExperimentRepository::find_meta_blob(
    const std::string& hex) const {
  const std::string name = hex + ".meta";
  const std::filesystem::path sharded =
      directory_ / kMetaDir / shard_of(name) / name;
  const std::filesystem::path flat = directory_ / kMetaDir / name;
  if (std::filesystem::exists(sharded)) return sharded;
  if (std::filesystem::exists(flat)) return flat;
  return layout_ == RepoLayout::Sharded ? sharded : flat;
}

std::filesystem::path ExperimentRepository::find_sev_blob(
    const std::string& hex) const {
  const std::string name = hex + ".sev";
  const std::filesystem::path sharded =
      directory_ / kSevDir / shard_of(name) / name;
  const std::filesystem::path flat = directory_ / kSevDir / name;
  if (std::filesystem::exists(flat) && !std::filesystem::exists(sharded)) {
    return flat;
  }
  return sharded;
}

std::string ExperimentRepository::ensure_blob(const Metadata& metadata) const {
  const std::string hex = digest_hex(metadata.digest());
  place_blob(find_meta_blob(hex), to_cube_meta(metadata));
  return hex;
}

std::string ExperimentRepository::ensure_sev_blob(
    const SeverityStore& severity) const {
  const std::string bytes = to_cube_sev(severity);
  const std::string hex = digest_hex(fnv1a(bytes));
  // Severity blobs are new with the sharded layout, so they shard
  // regardless of how the rest of the repository is laid out.
  place_blob(directory_ / kSevDir / shard_of(hex) / (hex + ".sev"), bytes);
  return hex;
}

bool ExperimentRepository::blob_referenced(const std::string& hex) const {
  for (const RepoEntry& e : entries_) {
    if (e.meta == hex) return true;
  }
  return false;
}

bool ExperimentRepository::sev_referenced(const std::string& hex) const {
  for (const RepoEntry& e : entries_) {
    if (e.sev == hex) return true;
  }
  return false;
}

void ExperimentRepository::write_experiment_file(const Experiment& experiment,
                                                 const RepoEntry& entry) const {
  const std::filesystem::path path = directory_ / entry.file;
  ensure_parent_dir(path);
  if (entry.format == RepoFormat::Binary) {
    write_cube_binary_ref_file(experiment, path.string());
  } else if (entry.format == RepoFormat::Columnar) {
    std::uint64_t sev_digest = 0;
    if (!parse_hex64(entry.sev, sev_digest)) {
      throw Error("repository entry '" + entry.id +
                  "' has a malformed severity digest '" + entry.sev + "'");
    }
    write_cube_xml_sev_ref_file(experiment, sev_digest, path.string());
  } else {
    write_cube_xml_ref_file(experiment, path.string());
  }
}

std::string ExperimentRepository::store(const Experiment& experiment,
                                        RepoFormat format) {
  OBS_SPAN("repo.store");
  std::unique_lock lock(mutex_);
  const std::string id = unique_id(sanitize(
      experiment.name().empty() ? "experiment" : experiment.name()));
  RepoEntry entry;
  entry.id = id;
  const std::string file_name = id + extension_for(format);
  entry.file =
      layout_ == RepoLayout::Sharded
          ? (std::filesystem::path(kExpDir) / id_shard(id) / file_name)
                .generic_string()
          : file_name;
  entry.format = format;
  // Crash ordering: blobs first, then the experiment file, then the index
  // record — at every intermediate point the index only references
  // complete files, and leftovers are mere orphan blobs.
  entry.meta = ensure_blob(experiment.metadata());
  if (format == RepoFormat::Columnar) {
    entry.sev = ensure_sev_blob(experiment.severity());
  }
  entry.attributes =
      std::map<std::string, std::string>(experiment.attributes().begin(),
                                         experiment.attributes().end());

  write_experiment_file(experiment, entry);
  entries_.push_back(std::move(entry));
  ids_.insert(id);
  index_store(entries_.back());
  generation_.fetch_add(1, std::memory_order_release);
  // Future loads of this digest should share the instance just stored.
  (void)interner_.intern(experiment.metadata_ptr());
  stores_counter().add(1);
  entries_gauge().set(static_cast<double>(entries_.size()));
  return id;
}

Experiment ExperimentRepository::load(const std::string& id) const {
  std::filesystem::path path;
  RepoFormat format = RepoFormat::Xml;
  {
    std::shared_lock lock(mutex_);
    bool found = false;
    for (const RepoEntry& entry : entries_) {
      if (entry.id == id) {
        path = directory_ / entry.file;
        format = entry.format;
        found = true;
        break;
      }
    }
    if (!found) {
      throw Error("repository has no experiment with id '" + id + "'");
    }
  }
  return load_path(path, format);
}

Experiment ExperimentRepository::load_path(const std::filesystem::path& path,
                                           RepoFormat format,
                                           StorageKind storage) const {
  OBS_SPAN("repo.load");
  loads_counter().add(1);
  Experiment experiment =
      format == RepoFormat::Binary
          ? read_cube_binary_file(path.string(), storage, resolver())
          : read_cube_xml_file(path.string(), storage, resolver(),
                               sev_resolver());
  if (validator_) validator_(experiment, path.string());
  return experiment;
}

bool ExperimentRepository::refresh() {
  std::unique_lock lock(mutex_);
  bool changed = false;
  if (index_) {
    index_->assert_owned();
    changed = index_->refresh(entries_);
  } else {
    std::uint64_t on_disk = 0;
    try {
      on_disk = digest_file(directory_ / kIndexFile);
    } catch (const Error&) {
      throw IoError("cannot re-read repository index in '" +
                    directory_.string() + "'");
    }
    if (on_disk != index_digest_) {
      read_index();
      changed = true;
    }
  }
  if (!changed) return false;
  rebuild_ids();
  generation_.fetch_add(1, std::memory_order_release);
  entries_gauge().set(static_cast<double>(entries_.size()));
  return true;
}

std::vector<RepoEntry> ExperimentRepository::entries_snapshot() const {
  std::shared_lock lock(mutex_);
  return entries_;
}

std::size_t ExperimentRepository::migrate() {
  std::unique_lock lock(mutex_);
  std::size_t changed = 0;
  // Phase 1: rewrite legacy entries (metadata inline in the experiment
  // file) to the blob-backed form.  The file keeps its location; only its
  // content and index record change.
  for (RepoEntry& entry : entries_) {
    if (!entry.meta.empty()) continue;
    const std::filesystem::path path = directory_ / entry.file;
    const Experiment experiment = load_path(path, entry.format);
    entry.meta = ensure_blob(experiment.metadata());
    write_experiment_file(experiment, entry);
    (void)interner_.intern(experiment.metadata_ptr());
    if (index_) {
      index_->assert_owned();
      index_->append(entry);
    }
    ++changed;
  }
  // Phase 2: convert a legacy single-index repository to the sharded
  // layout — blobs into prefix shards, experiment files under exp/<ab>/,
  // index.xml replaced by the segmented index.  Each step moves complete
  // files; the layout switch commits with the MANIFEST write, after which
  // index.xml is deleted.
  if (layout_ == RepoLayout::Legacy) {
    std::error_code ec;
    const std::filesystem::path meta_dir = directory_ / kMetaDir;
    if (std::filesystem::is_directory(meta_dir, ec)) {
      for (const auto& file :
           std::filesystem::directory_iterator(meta_dir, ec)) {
        if (!file.is_regular_file()) continue;
        const std::filesystem::path& p = file.path();
        if (p.extension() != ".meta") continue;
        const std::filesystem::path target =
            meta_dir / shard_of(p.filename().string()) / p.filename();
        ensure_parent_dir(target);
        std::error_code mv;
        std::filesystem::rename(p, target, mv);
        if (mv) {
          throw IoError("cannot shard metadata blob '" + p.string() +
                        "': " + mv.message());
        }
      }
    }
    for (RepoEntry& entry : entries_) {
      const std::string file_name =
          std::filesystem::path(entry.file).filename().string();
      const std::string target_rel =
          (std::filesystem::path(kExpDir) / id_shard(entry.id) / file_name)
              .generic_string();
      if (entry.file == target_rel) continue;
      const std::filesystem::path target = directory_ / target_rel;
      ensure_parent_dir(target);
      std::error_code mv;
      std::filesystem::rename(directory_ / entry.file, target, mv);
      if (mv) {
        throw IoError("cannot relocate experiment file '" + entry.file +
                      "': " + mv.message());
      }
      entry.file = target_rel;
      ++changed;
    }
    index_ = std::make_unique<SegmentedIndex>(directory_);
    index_->assert_owned();
    index_->create();
    for (const RepoEntry& entry : entries_) index_->append(entry);
    layout_ = RepoLayout::Sharded;
    std::filesystem::remove(directory_ / kIndexFile, ec);
    std::filesystem::remove(
        directory_ / (std::string(kIndexFile) + ".tmp"), ec);
  } else if (changed > 0 && !index_) {
    write_index();
  }
  // Phase 3: sweep the debris an interrupted seal or compaction may have
  // left in index/ — uncommitted (orphan) and superseded (stale) segment
  // files plus *.tmp leftovers.  The MANIFEST commit already made them
  // unreachable, so deleting them is the whole recovery.
  if (index_) {
    index_->assert_owned();
    changed += index_->remove_stray_segments();
  }
  if (changed > 0) {
    generation_.fetch_add(1, std::memory_order_release);
  }
  return changed;
}

void ExperimentRepository::remove(const std::string& id) {
  std::unique_lock lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->id == id) {
      const std::string file = it->file;
      const std::string meta = it->meta;
      const std::string sev = it->sev;
      entries_.erase(it);
      ids_.erase(id);
      // Crash ordering mirrors store(): the index commits first, the
      // files go second — a crash in between leaves orphans (which
      // remove_orphan_blobs()/gc reclaim), never an index record that
      // references deleted files.
      if (index_) {
        index_->assert_owned();
        index_->append_remove(id);
      } else {
        write_index();
      }
      std::error_code ec;
      std::filesystem::remove(directory_ / file, ec);
      if (!meta.empty() && !blob_referenced(meta)) {
        std::filesystem::remove(find_meta_blob(meta), ec);
      }
      if (!sev.empty() && !sev_referenced(sev)) {
        std::filesystem::remove(find_sev_blob(sev), ec);
      }
      generation_.fetch_add(1, std::memory_order_release);
      entries_gauge().set(static_cast<double>(entries_.size()));
      return;
    }
  }
  throw Error("repository has no experiment with id '" + id + "'");
}

std::vector<std::string> ExperimentRepository::orphan_blobs() const {
  std::shared_lock lock(mutex_);
  std::vector<std::string> orphans;
  const auto scan = [&](const char* dir_name, const char* extension,
                        const auto& referenced) {
    const std::filesystem::path dir = directory_ / dir_name;
    std::error_code ec;
    if (!std::filesystem::is_directory(dir, ec)) return;
    // Recursive: blobs live flat (legacy) or one shard level down.
    for (const auto& file :
         std::filesystem::recursive_directory_iterator(dir, ec)) {
      if (!file.is_regular_file()) continue;
      const std::filesystem::path& p = file.path();
      if (p.extension() != extension) continue;
      if (!referenced(p.stem().string())) {
        orphans.push_back(p.lexically_relative(directory_).generic_string());
      }
    }
  };
  scan(kMetaDir, ".meta",
       [this](const std::string& hex) { return blob_referenced(hex); });
  scan(kSevDir, ".sev",
       [this](const std::string& hex) { return sev_referenced(hex); });
  return orphans;
}

std::size_t ExperimentRepository::remove_orphan_blobs() {
  std::size_t removed = 0;
  for (const std::string& rel : orphan_blobs()) {
    std::error_code ec;
    if (std::filesystem::remove(directory_ / rel, ec) && !ec) ++removed;
  }
  return removed;
}

std::size_t ExperimentRepository::do_compact() {
  index_->assert_owned();
  const SegmentedIndex::CompactResult result = index_->compact(entries_);
  if (result.entries_changed) {
    // Compaction replayed records another process appended since our
    // last refresh; surface them like refresh() would.
    rebuild_ids();
    generation_.fetch_add(1, std::memory_order_release);
    entries_gauge().set(static_cast<double>(entries_.size()));
  }
  return result.superseded;
}

std::size_t ExperimentRepository::compact_if_needed() {
  std::unique_lock lock(mutex_);
  if (!index_ || !index_->should_compact(entries_.size())) return 0;
  return do_compact();
}

std::size_t ExperimentRepository::compact() {
  std::unique_lock lock(mutex_);
  if (!index_) return 0;
  return do_compact();
}

std::size_t ExperimentRepository::remove_stray_segments() {
  std::unique_lock lock(mutex_);
  if (!index_) return 0;
  index_->assert_owned();
  return index_->remove_stray_segments();
}

std::vector<RepoEntry> ExperimentRepository::query(
    const std::string& key, const std::string& value) const {
  std::shared_lock lock(mutex_);
  std::vector<RepoEntry> out;
  for (const RepoEntry& entry : entries_) {
    const auto it = entry.attributes.find(key);
    if (it != entry.attributes.end() && it->second == value) {
      out.push_back(entry);
    }
  }
  return out;
}

std::vector<Experiment> ExperimentRepository::load_all(
    const std::vector<RepoEntry>& selection) const {
  std::vector<Experiment> out;
  out.reserve(selection.size());
  for (const RepoEntry& entry : selection) {
    out.push_back(load(entry.id));
  }
  return out;
}

}  // namespace cube
