// Columnar severity blob format: one store's cells, content-addressed and
// mmap-friendly (the out-of-core severity form — docs/STORAGE.md).
//
// Layout (all integers little-endian u64, doubles IEEE-754 LE):
//
//   offset  0   magic   "CUBESEV1" (8 bytes)
//   offset  8   kind    0 = dense, 1 = sparse
//   offset 16   metrics
//   offset 24   cnodes
//   offset 32   threads
//   offset 40   entries dense: cell count (= metrics*cnodes*threads)
//                       sparse: number of stored (key, value) pairs
//   offset 48   digest  FNV-1a over the payload bytes
//   offset 56   payload dense:  entries doubles, flattened row-major
//                               [metric][cnode][thread] cell order
//               sparse: entries u64 flattened keys, strictly ascending,
//                       then entries doubles (matching values, non-zero)
//
// The payload starts 8-aligned, and the sparse value column follows an
// 8-byte key column, so a page-aligned mmap of the file yields aligned
// u64/f64 views — severity stores borrow them directly (severity.hpp,
// file-backed mode).
//
// Integrity: read_cube_sev (owned) verifies the payload digest.
// map_cube_sev_file validates the header/geometry only — verifying the
// digest would fault in every page, defeating the point of mapping; use
// check_cube_sev_file (lint, validators) for a full check.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>

#include "model/severity.hpp"

namespace cube {

/// Maps a severity digest to a store instance; readers of experiment
/// envelopes with a <sevref> call this.  Throwing or returning nullptr
/// fails the read.
using SeverityResolver = std::function<std::unique_ptr<SeverityStore>(
    std::uint64_t digest, StorageKind kind)>;

/// Blob file name for a digest: "<016x hex>.sev".
[[nodiscard]] std::string sev_blob_name(std::uint64_t digest);

/// Resolver over the repository blob layout: looks for the blob under
/// `directory` at sev/<ab>/<digest>.sev (the sharded layout) and then
/// sev/<digest>.sev.  With `map` (the default) the blob is mmapped into a
/// file-backed store; otherwise it is read into an owned store with the
/// digest verified.  Returns nullptr when no blob exists.
[[nodiscard]] SeverityResolver directory_severity_resolver(
    std::filesystem::path directory, bool map = true);

/// Serializes a store as a CUBESEV1 blob.  Dense stores write every cell;
/// sparse stores write the sorted non-zero columns.
void write_cube_sev(const SeverityStore& store, std::ostream& out);
[[nodiscard]] std::string to_cube_sev(const SeverityStore& store);

/// Deserializes a blob into an owned store, verifying the payload digest.
/// Throws cube::Error on bad magic, truncation, geometry mismatch, or a
/// digest mismatch.
[[nodiscard]] std::unique_ptr<SeverityStore> read_cube_sev(
    std::string_view data);
[[nodiscard]] std::unique_ptr<SeverityStore> read_cube_sev_file(
    const std::filesystem::path& path);

/// Maps a blob and returns a file-backed store borrowing its pages: dense
/// cells or sparse sorted columns are viewed in place, and
/// release_cells() drops consumed pages so series larger than RAM stream
/// at bounded resident memory.  Header and geometry are validated; the
/// payload digest is NOT (see header comment).
[[nodiscard]] std::unique_ptr<SeverityStore> map_cube_sev_file(
    const std::filesystem::path& path);

/// Full integrity check (header, geometry, payload digest, sparse key
/// order).  Throws cube::Error describing the first problem found.
void check_cube_sev_file(const std::filesystem::path& path);

/// Header fields of a severity blob, read without touching the payload.
struct SevBlobStat {
  StorageKind kind = StorageKind::Dense;
  std::uint64_t metrics = 0;
  std::uint64_t cnodes = 0;
  std::uint64_t threads = 0;
  /// Dense: cell count; sparse: stored (key, value) pairs.
  std::uint64_t entries = 0;
  /// Payload size the header implies (and the file carries past the
  /// 56-byte header) — what a full load would fault in.
  std::uint64_t payload_bytes = 0;
};

/// Reads ONLY the 56-byte header of a blob and returns its geometry —
/// the static analyzer's cost model runs on this, so the read must never
/// fault severity pages and does not count toward io.sev.bytes_read.
/// Validates magic/kind/geometry against the file size; throws
/// cube::Error on a malformed header.
[[nodiscard]] SevBlobStat stat_cube_sev_file(
    const std::filesystem::path& path);

/// True if `data` starts with the severity blob magic.
[[nodiscard]] bool is_cube_sev(std::string_view data) noexcept;

}  // namespace cube
