// Hotspot search over experiments.
//
// The closure property means any analysis written against the data model
// works on derived data too: "mechanisms aimed at finding hotspots can be
// applied to the original and the difference data likewise" (paper §6).
// This module ranks (metric, call path) combinations by severity — on an
// original experiment it finds where time is lost; on a difference
// experiment it finds where behavior changed most (in either direction,
// ranked by magnitude).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "model/experiment.hpp"

namespace cube {

/// One ranked finding.
struct Hotspot {
  const Metric* metric = nullptr;
  const Cnode* cnode = nullptr;
  /// Severity summed over the whole system (exclusive metric and call
  /// values; may be negative for difference experiments).
  Severity value = 0.0;
  /// |value| as a fraction of the sum of |value| over all combinations.
  double share = 0.0;
};

/// Options for the search.
struct HotspotOptions {
  std::size_t top_n = 10;
  /// Restrict to metrics of this unit; all units if unset.
  std::optional<Unit> unit = Unit::Seconds;
  /// Skip combinations whose |value| falls below this threshold.
  Severity min_magnitude = 0.0;
};

/// Ranks (metric, call path) combinations of `experiment` by |severity|
/// (descending) and returns the top N.
[[nodiscard]] std::vector<Hotspot> find_hotspots(
    const Experiment& experiment, const HotspotOptions& options = {});

/// Formats findings as an aligned table: rank, metric, call path, value,
/// share.  Negative values (gains in a difference experiment) are marked.
[[nodiscard]] std::string format_hotspots(const std::vector<Hotspot>& spots,
                                          int precision = 4);

}  // namespace cube
