// View model of the CUBE display.
//
// The display consists of three coupled tree browsers — metric, call, and
// system — over one experiment (original or derived alike; that is the
// point of the closure property).  Two user actions exist: selecting a node
// (metric or call pane) and expanding/collapsing a node (any pane).
//
// Aggregation semantics (paper §4):
//  * single representation / inclusion hierarchy: a collapsed node is
//    labeled with its inclusive value (whole subtree), an expanded node
//    with its exclusive value, so each severity fraction appears exactly
//    once per tree;
//  * aggregation across dimensions: a metric label sums over all call paths
//    and the whole system; a call label sums the *selected* metric (subtree
//    if the selection is collapsed) over the whole system; a system label
//    shows the selected metric for the selected call path at that entity;
//  * values can be shown absolute, as percentages of the selected metric
//    root's total, or normalized against an external reference value taken
//    from another experiment.
#pragma once

#include <string>
#include <vector>

#include "model/experiment.hpp"

namespace cube {

/// Program-dimension presentation: the call tree (default) or a flat
/// profile with one row per region ("The user can switch between a call
/// tree or a flat-profile view of the program dimension", paper section 4).
enum class ProgramView { CallTree, Flat };

/// How node labels are rendered.
enum class ValueMode {
  Absolute,  ///< raw severity values
  Percent,   ///< percent of the selected metric root's grand total
  External,  ///< percent of an externally supplied reference value
};

/// Selection + expansion state of the three panes.
class ViewState {
 public:
  /// Binds the view to an experiment (not owned).  Initial state: all nodes
  /// expanded, first metric root and first call root selected.
  explicit ViewState(const Experiment& experiment);

  [[nodiscard]] const Experiment& experiment() const noexcept {
    return *experiment_;
  }

  // --- selection ------------------------------------------------------------
  void select_metric(MetricIndex m);
  /// Selects the first metric whose unique name matches; throws
  /// OperationError if absent.
  void select_metric(std::string_view unique_name);
  void select_cnode(CnodeIndex c);
  /// Selects the first cnode whose callee region name matches.
  void select_cnode(std::string_view region_name);
  [[nodiscard]] MetricIndex selected_metric() const noexcept {
    return selected_metric_;
  }
  [[nodiscard]] CnodeIndex selected_cnode() const noexcept {
    return selected_cnode_;
  }

  // --- expansion --------------------------------------------------------------
  void set_metric_expanded(MetricIndex m, bool expanded);
  void set_cnode_expanded(CnodeIndex c, bool expanded);
  /// Machines and nodes share one expansion table indexed by pane row; the
  /// system pane uses entity indices per level.
  void set_machine_expanded(std::size_t index, bool expanded);
  void set_node_expanded(std::size_t index, bool expanded);
  void set_process_expanded(std::size_t index, bool expanded);
  void expand_all();
  void collapse_all();

  [[nodiscard]] bool metric_expanded(MetricIndex m) const {
    return metric_expanded_[m];
  }
  [[nodiscard]] bool cnode_expanded(CnodeIndex c) const {
    return cnode_expanded_[c];
  }
  [[nodiscard]] bool machine_expanded(std::size_t i) const {
    return machine_expanded_[i];
  }
  [[nodiscard]] bool node_expanded(std::size_t i) const {
    return node_expanded_[i];
  }
  [[nodiscard]] bool process_expanded(std::size_t i) const {
    return process_expanded_[i];
  }

  // --- program view ------------------------------------------------------------
  void set_program_view(ProgramView view) { program_view_ = view; }
  [[nodiscard]] ProgramView program_view() const noexcept {
    return program_view_;
  }

  // --- value mode -------------------------------------------------------------
  void set_mode(ValueMode mode) { mode_ = mode; }
  [[nodiscard]] ValueMode mode() const noexcept { return mode_; }
  /// Reference value for ValueMode::External (e.g. the total execution time
  /// of the experiment being compared against).
  void set_external_reference(Severity reference) {
    external_reference_ = reference;
  }
  [[nodiscard]] Severity external_reference() const noexcept {
    return external_reference_;
  }

 private:
  const Experiment* experiment_;
  MetricIndex selected_metric_ = 0;
  CnodeIndex selected_cnode_ = 0;
  std::vector<bool> metric_expanded_;
  std::vector<bool> cnode_expanded_;
  std::vector<bool> machine_expanded_;
  std::vector<bool> node_expanded_;
  std::vector<bool> process_expanded_;
  ProgramView program_view_ = ProgramView::CallTree;
  ValueMode mode_ = ValueMode::Absolute;
  Severity external_reference_ = 0.0;
};

/// Which pane a row belongs to.
enum class Pane { Metric, Call, System };

/// Which system level a system row shows.
enum class SystemLevel { Machine, Node, Process, Thread };

/// One visible row of a rendered pane.
struct ViewRow {
  Pane pane;
  /// Cnode index in the call-tree view; region index in the flat view.
  std::size_t entity_index;
  SystemLevel system_level = SystemLevel::Machine;  ///< system pane only
  std::size_t depth = 0;
  std::string label;
  Severity value = 0.0;       ///< absolute severity behind the row
  double display_value = 0.0; ///< after applying the value mode
  bool expandable = false;
  bool expanded = false;
  bool selected = false;
  bool visible = true;  ///< false while hidden under a collapsed ancestor
};

/// Fully computed view: the three panes' rows plus scale information.
struct ViewData {
  std::vector<ViewRow> metric_rows;
  std::vector<ViewRow> call_rows;
  std::vector<ViewRow> system_rows;
  /// Denominator used for Percent/External modes (0 in Absolute mode).
  Severity reference = 0.0;
  /// Largest |display value| over all rows; color ranking scale maximum.
  double scale_max = 0.0;
  /// True if the thread level is hidden (all processes single-threaded).
  bool threads_hidden = false;
};

/// Evaluates the full view for the current state.  Cost is linear in the
/// severity volume; bench A5 measures it.
[[nodiscard]] ViewData compute_view(const ViewState& state);

}  // namespace cube
