// Standalone HTML export of the CUBE display.
//
// Renders the three coupled panes as a self-contained HTML document with
// the same information content as the text renderer: severity boxes
// colored by magnitude, raised/sunken relief for the sign (difference
// experiments), selection highlight, and the value-mode header.  Useful
// for sharing a view of an (original or derived) experiment without the
// interactive browser.
#pragma once

#include <string>

#include "display/view.hpp"

namespace cube {

/// HTML rendering switches.
struct HtmlOptions {
  std::string title;        ///< page title; experiment name if empty
  bool include_hidden = false;  ///< also render rows under collapsed nodes
  int value_precision = 2;
};

/// Renders the current view as a complete HTML document.
[[nodiscard]] std::string render_html(const ViewState& state,
                                      const HtmlOptions& options = {});

/// Writes render_html() to a file; throws IoError on failure.
void write_html_file(const ViewState& state, const std::string& path,
                     const HtmlOptions& options = {});

}  // namespace cube
