#include "display/render.hpp"

#include <cmath>

#include "common/color.hpp"
#include "common/string_util.hpp"

namespace cube {

namespace {

const char* pane_title(Pane pane) {
  switch (pane) {
    case Pane::Metric: return "Metric tree";
    case Pane::Call: return "Call tree";
    case Pane::System: return "System tree";
  }
  return "?";
}

const std::vector<ViewRow>& rows_of(const ViewData& view, Pane pane) {
  switch (pane) {
    case Pane::Metric: return view.metric_rows;
    case Pane::Call: return view.call_rows;
    case Pane::System: return view.system_rows;
  }
  return view.metric_rows;
}

}  // namespace

std::string render_pane(const ViewData& view, Pane pane,
                        const RenderOptions& options) {
  std::string out = pane_title(pane);
  out += '\n';
  for (const ViewRow& row : rows_of(view, pane)) {
    if (!row.visible && !options.show_hidden) continue;
    std::string line = "  ";
    for (std::size_t i = 0; i < row.depth; ++i) line += "  ";
    // Expansion marker.
    if (row.expandable) {
      line += row.expanded ? "[-] " : "[+] ";
    } else {
      line += " *  ";
    }
    // Severity box: relief sign + value, colored by magnitude.
    const double normalized =
        view.scale_max > 0.0 ? std::abs(row.display_value) / view.scale_max
                             : 0.0;
    // Raised relief (positive) vs sunken relief (negative).
    const char relief = row.value < 0.0 ? 'v' : '^';
    std::string box = "[";
    box += relief;
    box += format_value(row.display_value, options.value_precision);
    box += "]";
    line += colorize(box, normalized, options.color);
    line += ' ';
    line += row.label;
    if (row.selected) line += "  <== selected";
    out += line;
    out += '\n';
  }
  return out;
}

std::string render_view(const ViewState& state, const RenderOptions& options) {
  const ViewData view = compute_view(state);
  std::string out;
  const Experiment& e = state.experiment();
  out += "CUBE experiment: " +
         (e.name().empty() ? std::string("(unnamed)") : e.name());
  out += e.kind() == ExperimentKind::Derived ? "  [derived]" : "  [original]";
  out += '\n';
  if (!e.provenance().empty()) {
    out += "provenance: " + e.provenance() + '\n';
  }
  switch (state.mode()) {
    case ValueMode::Absolute:
      out += "values: absolute\n";
      break;
    case ValueMode::Percent:
      out += "values: percent of selected metric root total (" +
             format_value(view.reference, options.value_precision) + ")\n";
      break;
    case ValueMode::External:
      out += "values: percent normalized to external reference (" +
             format_value(view.reference, options.value_precision) + ")\n";
      break;
  }
  out += '\n';
  out += render_pane(view, Pane::Metric, options);
  out += '\n';
  out += render_pane(view, Pane::Call, options);
  out += '\n';
  out += render_pane(view, Pane::System, options);
  if (options.legend) {
    out += '\n';
    out += color_legend(options.color);
  }
  return out;
}

}  // namespace cube
