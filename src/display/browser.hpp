// Command-driven front end of the CUBE display.
//
// Drives a ViewState with the two user actions the paper's GUI offers —
// selecting a node and expanding/collapsing a node — plus value-mode
// switches, through a small textual command language.  The interactive
// example (examples/cube_viewer) and the display tests both run on it.
#pragma once

#include <string>
#include <string_view>

#include "display/render.hpp"
#include "display/view.hpp"

namespace cube {

/// Stateful command interpreter over one experiment's view.
///
/// Commands:
///   select metric <uniq_name>     select call <region>
///   expand metric <uniq_name>     collapse metric <uniq_name>
///   expand call <region>          collapse call <region>
///   expand all                    collapse all
///   mode absolute | percent | external <reference-value>
///   view calltree | view flat
///   export <file.html>               write the view as standalone HTML
///   show                          render the current view
///   help                          list commands
class Browser {
 public:
  explicit Browser(const Experiment& experiment,
                   RenderOptions render_options = {});

  /// Executes one command line and returns its output ("" for state-only
  /// commands).  Throws OperationError on an unknown command or target.
  std::string execute(std::string_view command);

  [[nodiscard]] ViewState& state() noexcept { return state_; }
  [[nodiscard]] const ViewState& state() const noexcept { return state_; }

  /// Renders the current view (same as the "show" command).
  [[nodiscard]] std::string render() const;

 private:
  void set_metric_expansion(std::string_view name, bool expanded);
  void set_call_expansion(std::string_view region, bool expanded);

  ViewState state_;
  RenderOptions render_options_;
};

}  // namespace cube
