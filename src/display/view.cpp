#include "display/view.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <span>

#include "common/error.hpp"

namespace cube {

ViewState::ViewState(const Experiment& experiment)
    : experiment_(&experiment),
      metric_expanded_(experiment.metadata().num_metrics(), true),
      cnode_expanded_(experiment.metadata().num_cnodes(), true),
      machine_expanded_(experiment.metadata().machines().size(), true),
      node_expanded_(experiment.metadata().nodes().size(), true),
      process_expanded_(experiment.metadata().processes().size(), true) {}

void ViewState::select_metric(MetricIndex m) {
  if (m >= metric_expanded_.size()) {
    throw OperationError("metric index out of range");
  }
  selected_metric_ = m;
}

void ViewState::select_metric(std::string_view unique_name) {
  const Metric* m = experiment_->metadata().find_metric(unique_name);
  if (m == nullptr) {
    throw OperationError("no metric named '" + std::string(unique_name) +
                         "'");
  }
  selected_metric_ = m->index();
}

void ViewState::select_cnode(CnodeIndex c) {
  if (c >= cnode_expanded_.size()) {
    throw OperationError("cnode index out of range");
  }
  selected_cnode_ = c;
}

void ViewState::select_cnode(std::string_view region_name) {
  for (const auto& c : experiment_->metadata().cnodes()) {
    if (c->callee().name() == region_name) {
      selected_cnode_ = c->index();
      return;
    }
  }
  throw OperationError("no call path into region '" +
                       std::string(region_name) + "'");
}

void ViewState::set_metric_expanded(MetricIndex m, bool expanded) {
  metric_expanded_.at(m) = expanded;
}
void ViewState::set_cnode_expanded(CnodeIndex c, bool expanded) {
  cnode_expanded_.at(c) = expanded;
}
void ViewState::set_machine_expanded(std::size_t index, bool expanded) {
  machine_expanded_.at(index) = expanded;
}
void ViewState::set_node_expanded(std::size_t index, bool expanded) {
  node_expanded_.at(index) = expanded;
}
void ViewState::set_process_expanded(std::size_t index, bool expanded) {
  process_expanded_.at(index) = expanded;
}

void ViewState::expand_all() {
  std::fill(metric_expanded_.begin(), metric_expanded_.end(), true);
  std::fill(cnode_expanded_.begin(), cnode_expanded_.end(), true);
  std::fill(machine_expanded_.begin(), machine_expanded_.end(), true);
  std::fill(node_expanded_.begin(), node_expanded_.end(), true);
  std::fill(process_expanded_.begin(), process_expanded_.end(), true);
}

void ViewState::collapse_all() {
  std::fill(metric_expanded_.begin(), metric_expanded_.end(), false);
  std::fill(cnode_expanded_.begin(), cnode_expanded_.end(), false);
  std::fill(machine_expanded_.begin(), machine_expanded_.end(), false);
  std::fill(node_expanded_.begin(), node_expanded_.end(), false);
  std::fill(process_expanded_.begin(), process_expanded_.end(), false);
}

namespace {

void collect_metric_subtree(const Metric& m, std::vector<char>& mask) {
  mask[m.index()] = 1;
  for (const Metric* c : m.children()) collect_metric_subtree(*c, mask);
}

void collect_cnode_subtree(const Cnode& c, std::vector<char>& mask) {
  mask[c.index()] = 1;
  for (const Cnode* cc : c.children()) collect_cnode_subtree(*cc, mask);
}

Severity metric_incl(const Metric& m, const std::vector<Severity>& excl) {
  Severity sum = excl[m.index()];
  for (const Metric* c : m.children()) sum += metric_incl(*c, excl);
  return sum;
}

Severity cnode_incl(const Cnode& c, const std::vector<Severity>& excl) {
  Severity sum = excl[c.index()];
  for (const Cnode* cc : c.children()) sum += cnode_incl(*cc, excl);
  return sum;
}

}  // namespace

ViewData compute_view(const ViewState& state) {
  const Experiment& e = state.experiment();
  const Metadata& md = e.metadata();
  const SeverityStore& sev = e.severity();
  const std::size_t M = md.num_metrics();
  const std::size_t C = md.num_cnodes();
  const std::size_t T = md.num_threads();

  ViewData view;
  if (M == 0 || C == 0 || T == 0) return view;

  // --- selected metric set ---------------------------------------------------
  const Metric& msel = *md.metrics()[state.selected_metric()];
  std::vector<char> metric_mask(M, 0);
  if (state.metric_expanded(msel.index())) {
    metric_mask[msel.index()] = 1;
  } else {
    collect_metric_subtree(msel, metric_mask);
  }

  // --- per-pane aggregates ---------------------------------------------------
  // Bulk passes over the store (docs/STORAGE.md): dense walks the
  // contiguous cell array, sparse visits only the non-zeros — both in
  // ascending (m, c, t) order, so the sums are bit-identical to a
  // per-cell loop.
  const std::size_t plane = C * T;
  std::vector<Severity> metric_excl(M, 0.0);
  std::vector<Severity> call_excl(C, 0.0);  // selected metric, per cnode
  if (sev.kind() == StorageKind::Dense) {
    const std::span<const Severity> cells =
        static_cast<const DenseSeverity&>(sev).cells();
    std::size_t i = 0;
    for (MetricIndex m = 0; m < M; ++m) {
      const bool masked = metric_mask[m] != 0;
      for (CnodeIndex c = 0; c < C; ++c) {
        for (ThreadIndex t = 0; t < T; ++t, ++i) {
          const Severity v = cells[i];
          if (v == 0.0) continue;
          metric_excl[m] += v;
          if (masked) call_excl[c] += v;
        }
      }
    }
  } else {
    static_cast<const SparseSeverity&>(sev).for_each_nonzero(
        0, sev.num_cells(), [&](std::uint64_t key, Severity v) {
          const MetricIndex m = key / plane;
          metric_excl[m] += v;
          if (metric_mask[m]) call_excl[(key % plane) / T] += v;
        });
  }

  // Selected call set.  In the flat-profile view the selection denotes a
  // region: every call path executing in it contributes.
  const Cnode& csel = *md.cnodes()[state.selected_cnode()];
  std::vector<char> cnode_mask(C, 0);
  if (state.program_view() == ProgramView::Flat) {
    for (const auto& c : md.cnodes()) {
      if (&c->callee() == &csel.callee()) cnode_mask[c->index()] = 1;
    }
  } else if (state.cnode_expanded(csel.index())) {
    cnode_mask[csel.index()] = 1;
  } else {
    collect_cnode_subtree(csel, cnode_mask);
  }

  std::vector<Severity> sys_thread(T, 0.0);
  if (sev.kind() == StorageKind::Dense) {
    const auto& dense = static_cast<const DenseSeverity&>(sev);
    for (MetricIndex m = 0; m < M; ++m) {
      if (!metric_mask[m]) continue;
      for (CnodeIndex c = 0; c < C; ++c) {
        if (!cnode_mask[c]) continue;
        const std::size_t row = (m * C + c) * T;
        const std::span<const Severity> values = dense.cells(row, row + T);
        for (ThreadIndex t = 0; t < T; ++t) {
          sys_thread[t] += values[t];
        }
      }
    }
  } else {
    static_cast<const SparseSeverity&>(sev).for_each_nonzero(
        0, sev.num_cells(), [&](std::uint64_t key, Severity v) {
          if (!metric_mask[key / plane]) return;
          const std::size_t rest = key % plane;
          if (!cnode_mask[rest / T]) return;
          sys_thread[rest % T] += v;
        });
  }

  // --- reference value ---------------------------------------------------------
  switch (state.mode()) {
    case ValueMode::Absolute:
      view.reference = 0.0;
      break;
    case ValueMode::Percent:
      view.reference = metric_incl(msel.root(), metric_excl);
      break;
    case ValueMode::External:
      view.reference = state.external_reference();
      break;
  }
  const auto to_display = [&](Severity v) -> double {
    if (state.mode() == ValueMode::Absolute) return v;
    return view.reference != 0.0 ? 100.0 * v / view.reference : 0.0;
  };

  // --- metric pane -------------------------------------------------------------
  {
    // In the relative modes, a metric tree other than the selected one is
    // normalized against its own root total: percentages only make sense
    // within one unit of measurement (e.g. Visits must not be scaled by a
    // Time reference).
    const auto metric_display = [&](const Metric& m, Severity v) -> double {
      if (state.mode() == ValueMode::Absolute) return v;
      const Metric& root = m.root();
      Severity reference = view.reference;
      if (&root != &msel.root()) {
        reference = metric_incl(root, metric_excl);
      }
      return reference != 0.0 ? 100.0 * v / reference : 0.0;
    };

    // DFS in root order; `visible` tracks collapsed ancestors.
    const std::function<void(const Metric&, std::size_t, bool)> walk =
        [&](const Metric& m, std::size_t depth, bool visible) {
          ViewRow row;
          row.pane = Pane::Metric;
          row.entity_index = m.index();
          row.depth = depth;
          row.label = m.display_name();
          row.expandable = !m.children().empty();
          row.expanded = state.metric_expanded(m.index());
          row.value = row.expandable && row.expanded
                          ? metric_excl[m.index()]
                          : metric_incl(m, metric_excl);
          row.display_value = metric_display(m, row.value);
          row.selected = m.index() == state.selected_metric();
          row.visible = visible;
          view.metric_rows.push_back(row);
          const bool child_visible = visible && row.expanded;
          for (const Metric* c : m.children()) {
            walk(*c, depth + 1, child_visible);
          }
        };
    for (const Metric* root : md.metric_roots()) walk(*root, 0, true);
  }

  // --- call pane ----------------------------------------------------------------
  if (state.program_view() == ProgramView::Flat) {
    // Flat profile: one row per region that appears as a callee, carrying
    // the region's exclusive severity summed over all its call paths.
    // (The paper: "every flat profile can be represented using multiple
    // trivial call trees consisting only of a single node" — the flat view
    // is the same projection applied on display.)
    for (const auto& region : md.regions()) {
      Severity sum = 0.0;
      bool appears = false;
      for (const auto& c : md.cnodes()) {
        if (&c->callee() == region.get()) {
          sum += call_excl[c->index()];
          appears = true;
        }
      }
      if (!appears) continue;
      ViewRow row;
      row.pane = Pane::Call;
      row.entity_index = region->index();
      row.depth = 0;
      row.label = region->name();
      row.expandable = false;
      row.expanded = false;
      row.value = sum;
      row.display_value = to_display(sum);
      row.selected = region.get() == &csel.callee();
      row.visible = true;
      view.call_rows.push_back(row);
    }
  } else {
    const std::function<void(const Cnode&, std::size_t, bool)> walk =
        [&](const Cnode& c, std::size_t depth, bool visible) {
          ViewRow row;
          row.pane = Pane::Call;
          row.entity_index = c.index();
          row.depth = depth;
          row.label = c.callee().name();
          row.expandable = !c.children().empty();
          row.expanded = state.cnode_expanded(c.index());
          row.value = row.expandable && row.expanded
                          ? call_excl[c.index()]
                          : cnode_incl(c, call_excl);
          row.display_value = to_display(row.value);
          row.selected = c.index() == state.selected_cnode();
          row.visible = visible;
          view.call_rows.push_back(row);
          const bool child_visible = visible && row.expanded;
          for (const Cnode* cc : c.children()) {
            walk(*cc, depth + 1, child_visible);
          }
        };
    for (const Cnode* root : md.cnode_roots()) walk(*root, 0, true);
  }

  // --- system pane -----------------------------------------------------------------
  {
    // "The thread level of single-threaded applications is hidden."
    view.threads_hidden = std::all_of(
        md.processes().begin(), md.processes().end(),
        [](const auto& p) { return p->threads().size() == 1; });

    const auto process_sum = [&](const Process& p) {
      Severity sum = 0.0;
      for (const Thread* t : p.threads()) sum += sys_thread[t->index()];
      return sum;
    };

    for (const auto& machine : md.machines()) {
      Severity machine_sum = 0.0;
      for (const SysNode* node : machine->nodes()) {
        for (const Process* p : node->processes()) {
          machine_sum += process_sum(*p);
        }
      }
      const bool mexp = state.machine_expanded(machine->index());
      ViewRow mrow;
      mrow.pane = Pane::System;
      mrow.system_level = SystemLevel::Machine;
      mrow.entity_index = machine->index();
      mrow.depth = 0;
      mrow.label = machine->name();
      mrow.expandable = !machine->nodes().empty();
      mrow.expanded = mexp;
      mrow.value = mexp ? 0.0 : machine_sum;
      mrow.display_value = to_display(mrow.value);
      mrow.visible = true;
      view.system_rows.push_back(mrow);

      for (const SysNode* node : machine->nodes()) {
        Severity node_sum = 0.0;
        for (const Process* p : node->processes()) node_sum += process_sum(*p);
        const bool nexp = state.node_expanded(node->index());
        ViewRow nrow;
        nrow.pane = Pane::System;
        nrow.system_level = SystemLevel::Node;
        nrow.entity_index = node->index();
        nrow.depth = 1;
        nrow.label = node->name();
        nrow.expandable = !node->processes().empty();
        nrow.expanded = nexp;
        nrow.value = nexp ? 0.0 : node_sum;
        nrow.display_value = to_display(nrow.value);
        nrow.visible = mexp;
        view.system_rows.push_back(nrow);

        for (const Process* p : node->processes()) {
          const bool has_thread_rows =
              !view.threads_hidden && !p->threads().empty();
          const bool pexp = state.process_expanded(p->index());
          ViewRow prow;
          prow.pane = Pane::System;
          prow.system_level = SystemLevel::Process;
          prow.entity_index = p->index();
          prow.depth = 2;
          prow.label = p->name();
          prow.expandable = has_thread_rows;
          prow.expanded = pexp;
          prow.value = has_thread_rows && pexp ? 0.0 : process_sum(*p);
          prow.display_value = to_display(prow.value);
          prow.visible = mexp && nexp;
          view.system_rows.push_back(prow);

          if (has_thread_rows) {
            for (const Thread* t : p->threads()) {
              ViewRow trow;
              trow.pane = Pane::System;
              trow.system_level = SystemLevel::Thread;
              trow.entity_index = t->index();
              trow.depth = 3;
              trow.label = t->name();
              trow.expandable = false;
              trow.expanded = false;
              trow.value = sys_thread[t->index()];
              trow.display_value = to_display(trow.value);
              trow.visible = mexp && nexp && pexp;
              view.system_rows.push_back(trow);
            }
          }
        }
      }
    }
  }

  // --- color scale ------------------------------------------------------------------
  for (const auto* rows :
       {&view.metric_rows, &view.call_rows, &view.system_rows}) {
    for (const ViewRow& row : *rows) {
      if (row.visible) {
        view.scale_max = std::max(view.scale_max, std::abs(row.display_value));
      }
    }
  }
  return view;
}

}  // namespace cube
