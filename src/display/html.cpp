#include "display/html.hpp"

#include <cmath>
#include <fstream>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace cube {

namespace {

// Background color for a normalized severity magnitude: pale yellow
// through orange to red, matching the spirit of CUBE's color legend.
std::string css_color(double normalized) {
  if (normalized < 0.0) normalized = -normalized;
  if (normalized > 1.0) normalized = 1.0;
  // Interpolate hue 60 (yellow) -> 0 (red), saturating lightness.
  const int hue = static_cast<int>(60.0 * (1.0 - normalized));
  const int lightness = static_cast<int>(92.0 - 42.0 * normalized);
  return "hsl(" + std::to_string(hue) + ",85%," +
         std::to_string(lightness) + "%)";
}

void emit_pane(std::string& out, const ViewData& view, Pane pane,
               const char* title, const HtmlOptions& options) {
  const std::vector<ViewRow>* rows = nullptr;
  switch (pane) {
    case Pane::Metric: rows = &view.metric_rows; break;
    case Pane::Call: rows = &view.call_rows; break;
    case Pane::System: rows = &view.system_rows; break;
  }
  out += "<div class=\"pane\"><h2>";
  out += title;
  out += "</h2>\n<table>\n";
  for (const ViewRow& row : *rows) {
    if (!row.visible && !options.include_hidden) continue;
    const double normalized =
        view.scale_max > 0.0 ? std::abs(row.display_value) / view.scale_max
                             : 0.0;
    out += "<tr";
    if (row.selected) out += " class=\"selected\"";
    out += "><td class=\"value\" style=\"background:";
    out += css_color(normalized);
    out += "\">";
    // Relief: raised for positive, sunken for negative severities.
    out += row.value < 0.0 ? "&#9661; " : "&#9651; ";
    out += xml_escape(format_value(row.display_value,
                                   options.value_precision));
    out += "</td><td style=\"padding-left:";
    out += std::to_string(8 + 18 * row.depth);
    out += "px\">";
    if (row.expandable) out += row.expanded ? "&#9662; " : "&#9656; ";
    out += xml_escape(row.label);
    out += "</td></tr>\n";
  }
  out += "</table></div>\n";
}

}  // namespace

std::string render_html(const ViewState& state, const HtmlOptions& options) {
  const ViewData view = compute_view(state);
  const Experiment& e = state.experiment();
  const std::string title =
      !options.title.empty()
          ? options.title
          : (e.name().empty() ? std::string("CUBE experiment") : e.name());

  std::string out;
  out += "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n<title>";
  out += xml_escape(title);
  out +=
      "</title>\n<style>\n"
      "body{font-family:sans-serif;margin:1em;}\n"
      ".panes{display:flex;gap:1.5em;align-items:flex-start;}\n"
      ".pane table{border-collapse:collapse;font-size:13px;}\n"
      ".pane td{padding:1px 6px;white-space:nowrap;}\n"
      ".pane td.value{text-align:right;font-variant-numeric:tabular-nums;"
      "border:1px solid #bbb;min-width:4em;}\n"
      "tr.selected td{outline:2px solid #3366cc;}\n"
      ".meta{color:#555;margin-bottom:1em;}\n"
      "h2{font-size:15px;margin:0 0 4px 0;}\n"
      "</style></head>\n<body>\n<h1>";
  out += xml_escape(title);
  out += "</h1>\n<div class=\"meta\">";
  out += e.kind() == ExperimentKind::Derived ? "derived experiment"
                                             : "original experiment";
  if (!e.provenance().empty()) {
    out += " &mdash; provenance: " + xml_escape(e.provenance());
  }
  out += "<br>values: ";
  switch (state.mode()) {
    case ValueMode::Absolute:
      out += "absolute";
      break;
    case ValueMode::Percent:
      out += "percent of selected metric root total (" +
             xml_escape(format_value(view.reference,
                                     options.value_precision)) +
             ")";
      break;
    case ValueMode::External:
      out += "percent normalized to external reference (" +
             xml_escape(format_value(view.reference,
                                     options.value_precision)) +
             ")";
      break;
  }
  out += "</div>\n<div class=\"panes\">\n";
  emit_pane(out, view, Pane::Metric, "Metric tree", options);
  emit_pane(out, view, Pane::Call,
            state.program_view() == ProgramView::Flat ? "Flat profile"
                                                      : "Call tree",
            options);
  emit_pane(out, view, Pane::System, "System tree", options);
  out += "</div>\n</body></html>\n";
  return out;
}

void write_html_file(const ViewState& state, const std::string& path,
                     const HtmlOptions& options) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot create file '" + path + "'");
  out << render_html(state, options);
  out.flush();
  if (!out) throw IoError("write to '" + path + "' failed");
}

}  // namespace cube
