#include "display/browser.hpp"

#include "common/error.hpp"
#include "display/html.hpp"
#include "common/string_util.hpp"

namespace cube {

namespace {

constexpr const char* kHelp =
    "commands:\n"
    "  select metric <uniq_name> | select call <region>\n"
    "  expand  metric <uniq_name> | expand  call <region> | expand all\n"
    "  collapse metric <uniq_name> | collapse call <region> | collapse all\n"
    "  mode absolute | mode percent | mode external <reference>\n"
    "  view calltree | view flat\n"
    "  export <file.html>\n"
    "  show | help\n";

// Splits off the first whitespace-separated word.
std::pair<std::string_view, std::string_view> next_word(std::string_view s) {
  s = trim(s);
  std::size_t i = 0;
  while (i < s.size() && s[i] != ' ' && s[i] != '\t') ++i;
  return {s.substr(0, i), trim(s.substr(i))};
}

}  // namespace

Browser::Browser(const Experiment& experiment, RenderOptions render_options)
    : state_(experiment), render_options_(render_options) {}

std::string Browser::render() const {
  return render_view(state_, render_options_);
}

void Browser::set_metric_expansion(std::string_view name, bool expanded) {
  const Metric* m = state_.experiment().metadata().find_metric(name);
  if (m == nullptr) {
    throw OperationError("no metric named '" + std::string(name) + "'");
  }
  state_.set_metric_expanded(m->index(), expanded);
}

void Browser::set_call_expansion(std::string_view region, bool expanded) {
  bool found = false;
  for (const auto& c : state_.experiment().metadata().cnodes()) {
    if (c->callee().name() == region) {
      state_.set_cnode_expanded(c->index(), expanded);
      found = true;
    }
  }
  if (!found) {
    throw OperationError("no call path into region '" + std::string(region) +
                         "'");
  }
}

std::string Browser::execute(std::string_view command) {
  const auto [verb, rest] = next_word(command);
  if (verb.empty()) return "";
  if (verb == "help") return kHelp;
  if (verb == "show") return render();

  if (verb == "select") {
    const auto [what, target] = next_word(rest);
    if (target.empty()) throw OperationError("select: missing target");
    if (what == "metric") {
      state_.select_metric(target);
    } else if (what == "call") {
      state_.select_cnode(target);
    } else {
      throw OperationError("select: expected 'metric' or 'call'");
    }
    return "";
  }

  if (verb == "expand" || verb == "collapse") {
    const bool expanded = verb == "expand";
    const auto [what, target] = next_word(rest);
    if (what == "all") {
      if (expanded) {
        state_.expand_all();
      } else {
        state_.collapse_all();
      }
      return "";
    }
    if (target.empty()) {
      throw OperationError(std::string(verb) + ": missing target");
    }
    if (what == "metric") {
      set_metric_expansion(target, expanded);
    } else if (what == "call") {
      set_call_expansion(target, expanded);
    } else {
      throw OperationError(std::string(verb) +
                           ": expected 'metric', 'call', or 'all'");
    }
    return "";
  }

  if (verb == "export") {
    if (rest.empty()) throw OperationError("export: missing file name");
    write_html_file(state_, std::string(rest));
    return "wrote " + std::string(rest) + "\n";
  }

  if (verb == "view") {
    const auto [which, rest2] = next_word(rest);
    (void)rest2;
    if (which == "calltree" || which == "call") {
      state_.set_program_view(ProgramView::CallTree);
    } else if (which == "flat") {
      state_.set_program_view(ProgramView::Flat);
    } else {
      throw OperationError("view: expected calltree|flat");
    }
    return "";
  }

  if (verb == "mode") {
    const auto [which, arg] = next_word(rest);
    if (which == "absolute") {
      state_.set_mode(ValueMode::Absolute);
    } else if (which == "percent") {
      state_.set_mode(ValueMode::Percent);
    } else if (which == "external") {
      double reference = 0.0;
      if (!parse_double(arg, reference)) {
        throw OperationError("mode external: missing reference value");
      }
      state_.set_mode(ValueMode::External);
      state_.set_external_reference(reference);
    } else {
      throw OperationError("mode: expected absolute|percent|external");
    }
    return "";
  }

  throw OperationError("unknown command '" + std::string(verb) +
                       "' (try 'help')");
}

}  // namespace cube
