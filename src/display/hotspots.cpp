#include "display/hotspots.hpp"

#include <algorithm>
#include <cmath>

#include "common/string_util.hpp"
#include "common/text_table.hpp"

namespace cube {

std::vector<Hotspot> find_hotspots(const Experiment& experiment,
                                   const HotspotOptions& options) {
  const Metadata& md = experiment.metadata();
  std::vector<Hotspot> all;
  double magnitude_sum = 0.0;
  for (const auto& metric : md.metrics()) {
    if (options.unit && metric->unit() != *options.unit) continue;
    for (const auto& cnode : md.cnodes()) {
      Severity value = 0.0;
      for (ThreadIndex t = 0; t < md.num_threads(); ++t) {
        value += experiment.severity().get(metric->index(), cnode->index(),
                                           t);
      }
      const double magnitude = std::abs(value);
      if (magnitude <= options.min_magnitude || magnitude == 0.0) continue;
      magnitude_sum += magnitude;
      all.push_back(Hotspot{metric.get(), cnode.get(), value, 0.0});
    }
  }
  std::sort(all.begin(), all.end(), [](const Hotspot& a, const Hotspot& b) {
    return std::abs(a.value) > std::abs(b.value);
  });
  if (all.size() > options.top_n) all.resize(options.top_n);
  for (Hotspot& h : all) {
    h.share = magnitude_sum > 0.0 ? std::abs(h.value) / magnitude_sum : 0.0;
  }
  return all;
}

std::string format_hotspots(const std::vector<Hotspot>& spots,
                            int precision) {
  TextTable table;
  table.set_header({"#", "metric", "call path", "value", "share"});
  table.set_align({Align::Right, Align::Left, Align::Left, Align::Right,
                   Align::Right});
  std::size_t rank = 1;
  for (const Hotspot& h : spots) {
    table.add_row({std::to_string(rank++), h.metric->display_name(),
                   h.cnode->path(), format_value(h.value, precision),
                   format_value(100.0 * h.share, 1) + "%"});
  }
  return table.str();
}

}  // namespace cube
