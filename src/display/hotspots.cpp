#include "display/hotspots.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>

#include "common/string_util.hpp"
#include "common/text_table.hpp"

namespace cube {

std::vector<Hotspot> find_hotspots(const Experiment& experiment,
                                   const HotspotOptions& options) {
  const Metadata& md = experiment.metadata();
  const SeverityStore& sev = experiment.severity();
  const std::size_t C = md.num_cnodes();
  const std::size_t T = md.num_threads();

  // Thread-summed (metric, cnode) plane in one bulk pass over the store
  // (docs/STORAGE.md); ascending-order visitation keeps the sums
  // bit-identical to a per-cell loop.
  std::vector<Severity> plane_sum(md.num_metrics() * C, 0.0);
  if (sev.kind() == StorageKind::Dense) {
    const std::span<const Severity> cells =
        static_cast<const DenseSeverity&>(sev).cells();
    for (std::size_t row = 0; row < plane_sum.size(); ++row) {
      Severity value = 0.0;
      for (ThreadIndex t = 0; t < T; ++t) value += cells[row * T + t];
      plane_sum[row] = value;
    }
  } else {
    static_cast<const SparseSeverity&>(sev).for_each_nonzero(
        0, sev.num_cells(),
        [&](std::uint64_t key, Severity v) { plane_sum[key / T] += v; });
  }

  std::vector<Hotspot> all;
  double magnitude_sum = 0.0;
  for (const auto& metric : md.metrics()) {
    if (options.unit && metric->unit() != *options.unit) continue;
    for (const auto& cnode : md.cnodes()) {
      const Severity value = plane_sum[metric->index() * C + cnode->index()];
      const double magnitude = std::abs(value);
      if (magnitude <= options.min_magnitude || magnitude == 0.0) continue;
      magnitude_sum += magnitude;
      all.push_back(Hotspot{metric.get(), cnode.get(), value, 0.0});
    }
  }
  std::sort(all.begin(), all.end(), [](const Hotspot& a, const Hotspot& b) {
    return std::abs(a.value) > std::abs(b.value);
  });
  if (all.size() > options.top_n) all.resize(options.top_n);
  for (Hotspot& h : all) {
    h.share = magnitude_sum > 0.0 ? std::abs(h.value) / magnitude_sum : 0.0;
  }
  return all;
}

std::string format_hotspots(const std::vector<Hotspot>& spots,
                            int precision) {
  TextTable table;
  table.set_header({"#", "metric", "call path", "value", "share"});
  table.set_align({Align::Right, Align::Left, Align::Left, Align::Right,
                   Align::Right});
  std::size_t rank = 1;
  for (const Hotspot& h : spots) {
    table.add_row({std::to_string(rank++), h.metric->display_name(),
                   h.cnode->path(), format_value(h.value, precision),
                   format_value(100.0 * h.share, 1) + "%"});
  }
  return table.str();
}

}  // namespace cube
