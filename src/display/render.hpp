// Text renderer for the CUBE display: draws the three tree-browser panes
// with severity color ranking and sign relief.
//
// The original display used a GUI toolkit; this renderer reproduces its
// information content in plain text / ANSI: per-node severity boxes colored
// by magnitude relative to the scale maximum, with a "raised" marker for
// positive and a "sunken" marker for negative values (the relief encoding
// of difference experiments), a selection marker, and the color legend.
#pragma once

#include <string>

#include "display/view.hpp"

namespace cube {

/// Rendering switches.
struct RenderOptions {
  bool color = false;        ///< emit ANSI colors
  bool legend = false;       ///< append the color legend
  bool show_hidden = false;  ///< render rows under collapsed ancestors too
  int value_precision = 2;   ///< decimals for value labels
};

/// Renders one pane ("Metric tree", "Call tree", "System tree").
[[nodiscard]] std::string render_pane(const ViewData& view, Pane pane,
                                      const RenderOptions& options = {});

/// Renders all three panes stacked, plus mode/reference header and
/// optional legend — the complete display of Figure 1.
[[nodiscard]] std::string render_view(const ViewState& state,
                                      const RenderOptions& options = {});

}  // namespace cube
