// Aligned plain-text table formatting for bench and example output.
#pragma once

#include <string>
#include <vector>

namespace cube {

/// Column alignment for TextTable.
enum class Align { Left, Right };

/// Accumulates rows of strings and renders them with aligned columns,
/// a header underline, and two-space gutters.  Used by the figure/table
/// reproduction benches to print paper-style rows.
class TextTable {
 public:
  /// Defines the header.  Must be called before add_row.
  void set_header(std::vector<std::string> header);

  /// Sets per-column alignment; missing entries default to Left.
  void set_align(std::vector<Align> align);

  /// Appends a data row; short rows are padded with empty cells.
  void add_row(std::vector<std::string> row);

  /// Renders the table to a string (with trailing newline).
  [[nodiscard]] std::string str() const;

 private:
  std::vector<std::string> header_;
  std::vector<Align> align_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cube
