// A small fixed-size thread pool for the query executor and the
// row-chunked operator reductions.
//
// Two primitives are provided:
//   - submit(task): fire-and-forget execution on a worker thread; callers
//     that need completion or results do their own bookkeeping (the query
//     DAG executor counts dependencies itself).
//   - parallel_for(n, body): run body(0..n-1), distributing iterations
//     over the workers.  The CALLER PARTICIPATES in draining iterations,
//     so parallel_for may be invoked from inside a pool task (nested
//     parallelism) without risk of deadlock even when every worker is
//     busy: the calling thread alone can finish the loop.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_safety.hpp"

namespace cube {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 is clamped to 1.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task.  Tasks may themselves submit further tasks.  A task
  /// must not throw; wrap bodies that can fail (parallel_for does this for
  /// its iterations).
  void submit(std::function<void()> task);

  /// Runs body(i) for i in [0, n).  Iterations are claimed dynamically by
  /// the workers and by the calling thread; the call returns once all n
  /// iterations completed.  If any iteration throws, the first exception
  /// is rethrown in the caller after the loop drains (remaining unclaimed
  /// iterations are skipped).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// A sensible worker count for this machine (>= 1).
  [[nodiscard]] static std::size_t default_threads();

  /// The tracer name of worker `i`: "worker.<i>".  Stable across runs and
  /// pools, so self-profile span attribution is deterministic.
  [[nodiscard]] static std::string worker_name(std::size_t i);

 private:
  struct Task {
    std::function<void()> fn;
    /// Enqueue timestamp for the pool.queue_wait histogram; 0 when tracing
    /// was off at submit time (no clock read on the disabled path).
    std::int64_t enqueue_ns = 0;
  };

  /// The wait loop re-acquires mutex_ through the condition variable,
  /// which the thread-safety analysis cannot follow.
  void worker_loop(std::size_t index) CUBE_NO_THREAD_SAFETY_ANALYSIS;

  std::vector<std::thread> workers_;
  ts::Mutex mutex_;
  std::deque<Task> queue_ CUBE_GUARDED_BY(mutex_);
  std::condition_variable ready_;
  bool stopping_ CUBE_GUARDED_BY(mutex_) = false;
};

}  // namespace cube
