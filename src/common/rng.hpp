// Deterministic random number generation for the simulator and the
// synthetic counter models.
//
// All randomness in this repository flows through SplitMix64 so that every
// bench and test prints stable numbers across platforms (std::mt19937
// distributions are not guaranteed identical across standard libraries).
#pragma once

#include <cstdint>

namespace cube {

/// SplitMix64: tiny, fast, well-distributed 64-bit generator.
/// Suitable for simulation noise; not for cryptography.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n); n must be > 0.
  std::uint64_t below(std::uint64_t n) noexcept;

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

 private:
  std::uint64_t state_;
};

/// Mixes a stream id into a base seed so that independent simulation
/// components (per-rank noise, per-region jitter, ...) get decorrelated
/// deterministic streams.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base,
                                        std::uint64_t stream) noexcept;

}  // namespace cube
