// Small string helpers used across the library (no locale dependence).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cube {

/// Remove leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Split on a single character; empty fields are preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// ASCII lower-casing (metric names, units).
[[nodiscard]] std::string to_lower(std::string_view s);

/// Escape the five XML special characters for use in text or attributes.
[[nodiscard]] std::string xml_escape(std::string_view s);

/// Inverse of xml_escape; also resolves decimal/hex character references.
/// Throws cube::Error on a malformed entity reference.
[[nodiscard]] std::string xml_unescape(std::string_view s);

/// Format a severity value the way the CUBE display labels nodes:
/// fixed notation, trailing zeros stripped, at most `precision` decimals.
[[nodiscard]] std::string format_value(double v, int precision = 2);

/// True if `s` parses fully as a floating-point number.
[[nodiscard]] bool parse_double(std::string_view s, double& out);

/// True if `s` parses fully as an unsigned integer.
[[nodiscard]] bool parse_size(std::string_view s, std::size_t& out);

/// True if `s` parses fully as a lowercase/uppercase hex integer (no 0x
/// prefix) fitting 64 bits — the digest rendering of digest_hex().
[[nodiscard]] bool parse_hex64(std::string_view s, std::uint64_t& out);

}  // namespace cube
