// Portability shims for clang's thread-safety analysis
// (-Wthread-safety), plus a std::mutex wrapper the analysis understands.
//
// Clang statically checks lock discipline when types and members carry
// capability attributes: a member declared CUBE_GUARDED_BY(mutex_) may
// only be touched while mutex_ is held, a function declared
// CUBE_REQUIRES(mutex_) may only be called with it held, and so on.  GCC
// (and clang without the attribute) compiles every macro away, so the
// annotations are zero-cost documentation everywhere and enforced under
// the clang CI leg (-Wthread-safety -Werror).
//
// libstdc++'s std::mutex is not annotated, so the analysis cannot track
// it directly; cube::ts::Mutex wraps one with the capability attributes
// attached and cube::ts::MutexLock is the matching scoped guard.  Code
// that must escape the analysis (condition-variable wait loops re-acquire
// the lock in ways the checker cannot follow) uses
// CUBE_NO_THREAD_SAFETY_ANALYSIS on the narrowest possible function.
#pragma once

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define CUBE_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef CUBE_THREAD_ANNOTATION
#define CUBE_THREAD_ANNOTATION(x)  // expands to nothing outside clang
#endif

#define CUBE_CAPABILITY(x) CUBE_THREAD_ANNOTATION(capability(x))
#define CUBE_SCOPED_CAPABILITY CUBE_THREAD_ANNOTATION(scoped_lockable)
#define CUBE_GUARDED_BY(x) CUBE_THREAD_ANNOTATION(guarded_by(x))
#define CUBE_PT_GUARDED_BY(x) CUBE_THREAD_ANNOTATION(pt_guarded_by(x))
#define CUBE_REQUIRES(...) \
  CUBE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define CUBE_ACQUIRE(...) \
  CUBE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define CUBE_RELEASE(...) \
  CUBE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define CUBE_TRY_ACQUIRE(...) \
  CUBE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define CUBE_EXCLUDES(...) CUBE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define CUBE_ASSERT_CAPABILITY(x) \
  CUBE_THREAD_ANNOTATION(assert_capability(x))
#define CUBE_RETURN_CAPABILITY(x) CUBE_THREAD_ANNOTATION(lock_returned(x))
#define CUBE_NO_THREAD_SAFETY_ANALYSIS \
  CUBE_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace cube::ts {

/// std::mutex with the capability attribute attached so clang's analysis
/// can track it.  native() exposes the wrapped mutex for APIs that need
/// the real type (std::condition_variable_any locks the wrapper itself,
/// so most code never needs it).
class CUBE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CUBE_ACQUIRE() { impl_.lock(); }
  void unlock() CUBE_RELEASE() { impl_.unlock(); }
  bool try_lock() CUBE_TRY_ACQUIRE(true) { return impl_.try_lock(); }

  [[nodiscard]] std::mutex& native() noexcept { return impl_; }

 private:
  std::mutex impl_;
};

/// Scoped lock over Mutex — std::lock_guard with the scoped-capability
/// attribute so the analysis sees acquisition and release.
class CUBE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) CUBE_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() CUBE_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

}  // namespace cube::ts
