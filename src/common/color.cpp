#include "common/color.hpp"

#include <array>
#include <cstdio>

namespace cube {

namespace {

// Ramp from faint gray (negligible) to bright red (severe).  Thresholds are
// lower bounds on the normalized severity magnitude.
constexpr std::array<ColorStop, 6> kRamp = {{
    {0.00, "\x1b[90m", "gray"},
    {0.02, "\x1b[37m", "white"},
    {0.10, "\x1b[36m", "cyan"},
    {0.25, "\x1b[33m", "yellow"},
    {0.50, "\x1b[35m", "magenta"},
    {0.75, "\x1b[31m", "red"},
}};

}  // namespace

const ColorStop& color_for(double normalized) noexcept {
  if (normalized < 0.0) normalized = -normalized;
  if (normalized > 1.0) normalized = 1.0;
  std::size_t best = 0;
  for (std::size_t i = 0; i < kRamp.size(); ++i) {
    if (normalized >= kRamp[i].threshold) best = i;
  }
  return kRamp[best];
}

std::string colorize(const std::string& text, double normalized, bool enable) {
  if (!enable) return text;
  return std::string(color_for(normalized).ansi) + text + ansi_reset();
}

std::string color_legend(bool enable) {
  std::string out = "color legend (fraction of scale maximum):\n";
  for (std::size_t i = 0; i < kRamp.size(); ++i) {
    const double lo = kRamp[i].threshold;
    const double hi = i + 1 < kRamp.size() ? kRamp[i + 1].threshold : 1.0;
    char buf[64];
    std::snprintf(buf, sizeof buf, "  [%4.0f%% .. %4.0f%%] ", lo * 100.0,
                  hi * 100.0);
    out += buf;
    out += colorize(kRamp[i].name, (lo + hi) / 2.0, enable);
    out += '\n';
  }
  return out;
}

const char* ansi_reset() noexcept { return "\x1b[0m"; }

}  // namespace cube
