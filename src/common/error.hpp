// Error hierarchy for the CUBE library.
//
// All library failures are reported through exceptions rooted at
// cube::Error so callers can catch library errors distinctly from other
// std::runtime_error sources.
#pragma once

#include <stdexcept>
#include <string>

namespace cube {

/// Root of the CUBE exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what);
};

/// A model instance violates a data-model constraint (e.g. mixed units in
/// one metric tree, a call-tree node whose call site is undefined).
class ValidationError : public Error {
 public:
  explicit ValidationError(const std::string& what);
};

/// An algebra operator was applied to operands it is not defined for.
class OperationError : public Error {
 public:
  explicit OperationError(const std::string& what);
};

/// A file could not be parsed.  Carries 1-based line/column of the failure.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, std::size_t line, std::size_t column);

  [[nodiscard]] std::size_t line() const noexcept { return line_; }
  [[nodiscard]] std::size_t column() const noexcept { return column_; }

 private:
  std::size_t line_;
  std::size_t column_;
};

/// An I/O operation on the underlying stream or filesystem failed.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what);
};

/// A well-known invariant of the data model or a file format was violated.
///
/// Unlike the plain Error/ParseError messages, a CheckError is STRUCTURED:
/// it names the violated invariant by its lint rule id (docs/LINT.md) and
/// the location within the experiment where it was detected (e.g.
/// `metric "time" / cnode #42 / thread #3`).  The lint subsystem maps
/// CheckErrors straight onto diagnostics; throw sites that detect a
/// nameable invariant violation should prefer this type.
class CheckError : public Error {
 public:
  CheckError(std::string rule, std::string location, const std::string& what);

  /// The violated lint rule, e.g. "sev.out-of-range".
  [[nodiscard]] const std::string& rule() const noexcept { return rule_; }
  /// Where the violation sits, e.g. `metric "time" / cnode #42`; may be
  /// empty when the failure concerns the whole file or stream.
  [[nodiscard]] const std::string& location() const noexcept {
    return location_;
  }
  /// The bare message without the rule/location prefix.
  [[nodiscard]] const std::string& detail() const noexcept { return detail_; }

 private:
  std::string rule_;
  std::string location_;
  std::string detail_;
};

}  // namespace cube
