#include "common/text_table.hpp"

#include <algorithm>

namespace cube {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::set_align(std::vector<Align> align) {
  align_ = std::move(align);
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::str() const {
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());

  std::vector<std::size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      width[i] = std::max(width[i], r[i].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto align_of = [&](std::size_t col) {
    return col < align_.size() ? align_[col] : Align::Left;
  };

  auto emit_row = [&](const std::vector<std::string>& r, std::string& out) {
    for (std::size_t i = 0; i < cols; ++i) {
      const std::string cell = i < r.size() ? r[i] : std::string();
      const std::size_t pad = width[i] - cell.size();
      if (align_of(i) == Align::Right) out.append(pad, ' ');
      out += cell;
      if (align_of(i) == Align::Left && i + 1 < cols) out.append(pad, ' ');
      if (i + 1 < cols) out += "  ";
    }
    out += '\n';
  };

  std::string out;
  if (!header_.empty()) {
    emit_row(header_, out);
    std::size_t total = 0;
    for (std::size_t i = 0; i < cols; ++i) {
      total += width[i] + (i + 1 < cols ? 2 : 0);
    }
    out.append(total, '-');
    out += '\n';
  }
  for (const auto& r : rows_) emit_row(r, out);
  return out;
}

}  // namespace cube
