#include "common/string_util.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace cube {

namespace {

bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

}  // namespace

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::string xml_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string xml_unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '&') {
      out.push_back(s[i]);
      continue;
    }
    const std::size_t end = s.find(';', i);
    if (end == std::string_view::npos) {
      throw Error("unterminated entity reference in: " + std::string(s));
    }
    const std::string_view ent = s.substr(i + 1, end - i - 1);
    if (ent == "amp") {
      out.push_back('&');
    } else if (ent == "lt") {
      out.push_back('<');
    } else if (ent == "gt") {
      out.push_back('>');
    } else if (ent == "quot") {
      out.push_back('"');
    } else if (ent == "apos") {
      out.push_back('\'');
    } else if (!ent.empty() && ent[0] == '#') {
      unsigned long code = 0;
      const bool hex = ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X');
      const std::string digits(ent.substr(hex ? 2 : 1));
      if (digits.empty()) throw Error("empty character reference");
      char* endp = nullptr;
      code = std::strtoul(digits.c_str(), &endp, hex ? 16 : 10);
      if (endp == nullptr || *endp != '\0' || code == 0 || code > 0x10FFFF) {
        throw Error("invalid character reference: &" + std::string(ent) + ";");
      }
      // Encode as UTF-8.
      if (code < 0x80) {
        out.push_back(static_cast<char>(code));
      } else if (code < 0x800) {
        out.push_back(static_cast<char>(0xC0 | (code >> 6)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      } else if (code < 0x10000) {
        out.push_back(static_cast<char>(0xE0 | (code >> 12)));
        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      } else {
        out.push_back(static_cast<char>(0xF0 | (code >> 18)));
        out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      }
    } else {
      throw Error("unknown entity reference: &" + std::string(ent) + ";");
    }
    i = end;
  }
  return out;
}

std::string format_value(double v, int precision) {
  if (!std::isfinite(v)) return std::isnan(v) ? "nan" : (v > 0 ? "inf" : "-inf");
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  if (s == "-0") s = "0";
  return s;
}

bool parse_double(std::string_view s, double& out) {
  s = trim(s);
  if (s.empty()) return false;
  const auto* first = s.data();
  const auto* last = s.data() + s.size();
  const auto res = std::from_chars(first, last, out);
  return res.ec == std::errc() && res.ptr == last;
}

bool parse_size(std::string_view s, std::size_t& out) {
  s = trim(s);
  if (s.empty()) return false;
  const auto* first = s.data();
  const auto* last = s.data() + s.size();
  const auto res = std::from_chars(first, last, out);
  return res.ec == std::errc() && res.ptr == last;
}

bool parse_hex64(std::string_view s, std::uint64_t& out) {
  s = trim(s);
  if (s.empty() || s.size() > 16) return false;
  const auto* first = s.data();
  const auto* last = s.data() + s.size();
  const auto res = std::from_chars(first, last, out, 16);
  return res.ec == std::errc() && res.ptr == last;
}

}  // namespace cube
