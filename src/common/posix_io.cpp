#include "common/posix_io.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"

namespace cube {

std::size_t read_full(int fd, void* buf, std::size_t n) {
  char* out = static_cast<char*>(buf);
  std::size_t done = 0;
  while (done < n) {
    const ssize_t got = ::read(fd, out + done, n - done);
    if (got > 0) {
      done += static_cast<std::size_t>(got);
      continue;
    }
    if (got == 0) break;  // end of stream
    if (errno == EINTR) continue;
    throw IoError(std::string("read failed: ") + std::strerror(errno));
  }
  return done;
}

void write_full(int fd, const void* buf, std::size_t n) {
  const char* in = static_cast<const char*>(buf);
  std::size_t done = 0;
  while (done < n) {
    const ssize_t put = ::write(fd, in + done, n - done);
    if (put > 0) {
      done += static_cast<std::size_t>(put);
      continue;
    }
    // write(2) returning 0 on a nonzero count is not meaningful for the
    // stream sockets and pipes these helpers serve; treat it like EINTR
    // and retry rather than spinning an error.
    if (put == 0 || errno == EINTR) continue;
    throw IoError(std::string("write failed: ") + std::strerror(errno));
  }
}

}  // namespace cube
