#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace cube {

std::uint64_t SplitMix64::next() noexcept {
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double SplitMix64::uniform() noexcept {
  // 53 random mantissa bits -> uniform in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double SplitMix64::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t SplitMix64::below(std::uint64_t n) noexcept {
  // Modulo bias is negligible for n << 2^64 (simulation use only).
  return next() % n;
}

double SplitMix64::normal() noexcept {
  // Box-Muller; draw u1 away from zero to keep log() finite.
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double SplitMix64::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream) noexcept {
  SplitMix64 g(base ^ (0xA5A5A5A5DEADBEEFULL + stream * 0x9E3779B97F4A7C15ULL));
  return g.next();
}

}  // namespace cube
