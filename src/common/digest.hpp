// Content digests for the query cache (FNV-1a, 64 bit).
//
// Not cryptographic — the cache keys derived experiments by the digest of
// (canonical sub-expression x operand file digests); an adversarial
// collision is not in the threat model of a local analysis repository,
// and 64 bits make an accidental collision vanishingly unlikely at
// repository scale.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>

namespace cube {

/// Streaming FNV-1a 64-bit hash.
class Fnv1a {
 public:
  Fnv1a& update(std::string_view bytes) noexcept;
  Fnv1a& update(std::uint64_t value) noexcept;  // little-endian octets
  [[nodiscard]] std::uint64_t value() const noexcept { return state_; }

 private:
  std::uint64_t state_ = 0xcbf29ce484222325ull;
};

/// One-shot digest of a byte string.
[[nodiscard]] std::uint64_t fnv1a(std::string_view bytes) noexcept;

/// Digest of a file's contents; throws IoError if unreadable.
[[nodiscard]] std::uint64_t digest_file(const std::filesystem::path& path);

/// Fixed-width lowercase hex rendering ("016x").
[[nodiscard]] std::string digest_hex(std::uint64_t digest);

}  // namespace cube
