// Fundamental scalar types and index vocabulary shared by all CUBE modules.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace cube {

/// Severity values are accumulated metric quantities (seconds, bytes,
/// occurrence counts).  They may be negative in derived experiments that
/// represent differences, hence a signed floating-point type.
using Severity = double;

/// Dense per-experiment index of a metric within the metric forest.
using MetricIndex = std::size_t;
/// Dense per-experiment index of a call-tree node.
using CnodeIndex = std::size_t;
/// Dense per-experiment index of a thread (leaf of the system forest).
using ThreadIndex = std::size_t;

/// Sentinel meaning "no such entity" for optional parent/owner links.
inline constexpr std::size_t kNoIndex = std::numeric_limits<std::size_t>::max();

}  // namespace cube
