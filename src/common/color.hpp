// ANSI color ramp used by the display component to rank severities, in the
// spirit of the CUBE GUI's color legend.
#pragma once

#include <string>

namespace cube {

/// One entry of the severity color scale.
struct ColorStop {
  double threshold;      ///< Lower bound of this color's range, in [0,1].
  const char* ansi;      ///< ANSI SGR sequence for the color.
  const char* name;      ///< Human-readable color name for the legend.
};

/// Maps a normalized severity magnitude in [0,1] to an ANSI color escape.
/// Values outside [0,1] are clamped.  The ramp runs from pale (low) through
/// yellow/orange to red (high), mirroring CUBE's legend.
[[nodiscard]] const ColorStop& color_for(double normalized) noexcept;

/// Wraps text in the color for `normalized`, resetting afterwards.
/// If `enable` is false the text is returned unchanged (plain renderers).
[[nodiscard]] std::string colorize(const std::string& text, double normalized,
                                   bool enable);

/// Renders the textual color legend: one line per stop with its range.
[[nodiscard]] std::string color_legend(bool enable);

/// ANSI reset sequence.
[[nodiscard]] const char* ansi_reset() noexcept;

}  // namespace cube
