#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

namespace cube {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = std::max<std::size_t>(1, threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  ready_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

namespace {

/// Shared state of one parallel_for: iterations are claimed with a single
/// atomic counter; completions are counted so the caller knows when the
/// last claimed iteration (possibly running on a worker) has finished.
struct LoopState {
  explicit LoopState(std::size_t total) : n(total) {}

  const std::size_t n;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;  // first failure; guarded by mutex
  std::mutex mutex;
  std::condition_variable done;

  void drain(const std::function<void(std::size_t)>& body) {
    for (std::size_t i; (i = next.fetch_add(1)) < n;) {
      if (!failed.load()) {
        try {
          body(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mutex);
          if (!error) error = std::current_exception();
          failed.store(true);
        }
      }
      if (completed.fetch_add(1) + 1 == n) {
        std::lock_guard<std::mutex> lock(mutex);
        done.notify_all();
      }
    }
  }
};

}  // namespace

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (n == 1) {
    body(0);
    return;
  }
  auto state = std::make_shared<LoopState>(n);
  // Helpers beyond what the loop can use would only claim nothing and
  // exit, so cap them; the caller is one more drainer.
  const std::size_t helpers = std::min(n - 1, size());
  for (std::size_t i = 0; i < helpers; ++i) {
    submit([state, body] { state->drain(body); });
  }
  state->drain(body);
  {
    std::unique_lock<std::mutex> lock(state->mutex);
    state->done.wait(lock, [&] { return state->completed.load() >= n; });
    if (state->error) std::rethrow_exception(state->error);
  }
}

std::size_t ThreadPool::default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

}  // namespace cube
