#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace cube {

namespace {

std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Pool instruments live in the global registry; resolved once per process.
obs::Counter& tasks_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "pool.tasks", obs::SampleUnit::Count);
  return c;
}

obs::Histogram& queue_wait_histogram() {
  static obs::Histogram& h = obs::MetricsRegistry::global().histogram(
      "pool.queue_wait", obs::SampleUnit::Seconds);
  return h;
}

obs::Gauge& threads_gauge() {
  static obs::Gauge& g = obs::MetricsRegistry::global().gauge(
      "pool.threads", obs::SampleUnit::Count);
  return g;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = std::max<std::size_t>(1, threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
  threads_gauge().set(static_cast<double>(n));
}

ThreadPool::~ThreadPool() {
  {
    ts::MutexLock lock(mutex_);
    stopping_ = true;
  }
  ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  Task entry;
  entry.fn = std::move(task);
  if (obs::tracing_enabled()) entry.enqueue_ns = now_ns();
  {
    ts::MutexLock lock(mutex_);
    queue_.push_back(std::move(entry));
  }
  ready_.notify_one();
}

void ThreadPool::worker_loop(std::size_t index) {
  obs::set_current_thread_name(worker_name(index));
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_.native());
      ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    if (task.enqueue_ns != 0) {
      queue_wait_histogram().observe(
          static_cast<double>(now_ns() - task.enqueue_ns) / 1e9);
      tasks_counter().add(1);
      OBS_SPAN("pool.task");
      task.fn();
    } else {
      task.fn();
    }
  }
}

namespace {

/// Shared state of one parallel_for: iterations are claimed with a single
/// atomic counter; completions are counted so the caller knows when the
/// last claimed iteration (possibly running on a worker) has finished.
struct LoopState {
  explicit LoopState(std::size_t total) : n(total) {}

  const std::size_t n;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;  // first failure; guarded by mutex
  std::mutex mutex;
  std::condition_variable done;

  void drain(const std::function<void(std::size_t)>& body) {
    for (std::size_t i; (i = next.fetch_add(1)) < n;) {
      if (!failed.load()) {
        try {
          body(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mutex);
          if (!error) error = std::current_exception();
          failed.store(true);
        }
      }
      if (completed.fetch_add(1) + 1 == n) {
        std::lock_guard<std::mutex> lock(mutex);
        done.notify_all();
      }
    }
  }
};

}  // namespace

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (n == 1) {
    body(0);
    return;
  }
  auto state = std::make_shared<LoopState>(n);
  // Helpers beyond what the loop can use would only claim nothing and
  // exit, so cap them; the caller is one more drainer.
  const std::size_t helpers = std::min(n - 1, size());
  for (std::size_t i = 0; i < helpers; ++i) {
    submit([state, body] { state->drain(body); });
  }
  state->drain(body);
  {
    std::unique_lock<std::mutex> lock(state->mutex);
    state->done.wait(lock, [&] { return state->completed.load() >= n; });
    if (state->error) std::rethrow_exception(state->error);
  }
}

std::size_t ThreadPool::default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::string ThreadPool::worker_name(std::size_t i) {
  return "worker." + std::to_string(i);
}

}  // namespace cube
