#include "common/digest.hpp"

#include <fstream>

#include "common/error.hpp"

namespace cube {

namespace {
constexpr std::uint64_t kPrime = 0x100000001b3ull;
}

Fnv1a& Fnv1a::update(std::string_view bytes) noexcept {
  for (const char c : bytes) {
    state_ ^= static_cast<unsigned char>(c);
    state_ *= kPrime;
  }
  return *this;
}

Fnv1a& Fnv1a::update(std::uint64_t value) noexcept {
  for (int i = 0; i < 8; ++i) {
    state_ ^= (value >> (8 * i)) & 0xffu;
    state_ *= kPrime;
  }
  return *this;
}

std::uint64_t fnv1a(std::string_view bytes) noexcept {
  return Fnv1a().update(bytes).value();
}

std::uint64_t digest_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw IoError("cannot read '" + path.string() + "' for digest");
  }
  Fnv1a hash;
  char buffer[1 << 16];
  while (in.read(buffer, sizeof buffer) || in.gcount() > 0) {
    hash.update(std::string_view(buffer,
                                 static_cast<std::size_t>(in.gcount())));
  }
  return hash.value();
}

std::string digest_hex(std::uint64_t digest) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[digest & 0xf];
    digest >>= 4;
  }
  return out;
}

}  // namespace cube
