#include "common/mmap_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/error.hpp"

namespace cube {

namespace {

[[nodiscard]] std::size_t page_size() noexcept {
  static const std::size_t size =
      static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return size;
}

}  // namespace

MappedFile::MappedFile(const std::filesystem::path& path) : path_(path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    throw Error("cannot open " + path.string() + " for mapping: " +
                std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    throw Error("cannot stat " + path.string() + ": " + std::strerror(err));
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ > 0) {
    void* addr = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      throw Error("cannot map " + path.string() + ": " + std::strerror(err));
    }
    data_ = static_cast<const std::byte*>(addr);
  }
  ::close(fd);
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
  }
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      path_(std::move(other.path_)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) {
      ::munmap(const_cast<std::byte*>(data_), size_);
    }
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    path_ = std::move(other.path_);
  }
  return *this;
}

void MappedFile::advise_sequential() const noexcept {
  if (data_ != nullptr) {
    ::madvise(const_cast<std::byte*>(data_), size_, MADV_SEQUENTIAL);
  }
}

void MappedFile::release_range(std::size_t offset,
                               std::size_t length) const noexcept {
  if (data_ == nullptr || offset >= size_) return;
  length = std::min(length, size_ - offset);
  // Shrink inward to page boundaries: releasing a partial page would
  // also drop bytes outside the requested range.
  const std::size_t page = page_size();
  const std::size_t begin = (offset + page - 1) / page * page;
  const std::size_t end = (offset + length) / page * page;
  if (end <= begin) return;
  ::madvise(const_cast<std::byte*>(data_) + begin, end - begin, MADV_DONTNEED);
}

}  // namespace cube
