// Read-only memory-mapped file with RAII unmap and page-residency hints.
//
// The out-of-core storage layer (docs/STORAGE.md) maps CUBESEV1 severity
// blobs instead of reading them: severity stores then expose borrowed
// spans over file-backed pages, and the chunked operator kernels can
// release pages behind their sweep so series larger than RAM run at
// bounded resident memory.
#pragma once

#include <cstddef>
#include <filesystem>

namespace cube {

/// One read-only mapping of a whole regular file.  Non-copyable; the
/// mapping lives until destruction.  Empty files map to a null view of
/// size zero.  All errors throw cube::Error.
class MappedFile {
 public:
  explicit MappedFile(const std::filesystem::path& path);
  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;

  [[nodiscard]] const std::byte* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return path_;
  }

  /// Hints the kernel that the whole mapping will be read front to back
  /// (readahead-friendly).  Best effort; never throws.
  void advise_sequential() const noexcept;

  /// Tells the kernel the byte range [offset, offset + length) will not
  /// be needed again: resident pages are dropped from RSS and re-faulted
  /// from the file if touched later (the mapping stays valid).  The range
  /// is shrunk inward to page boundaries; a sub-page range is a no-op.
  /// Best effort; never throws.
  void release_range(std::size_t offset, std::size_t length) const noexcept;

 private:
  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  std::filesystem::path path_;
};

}  // namespace cube
