// EINTR-safe file-descriptor I/O (docs/SERVER.md, "Framing").
//
// The raw read(2)/write(2) calls the wire protocol sits on can return
// early in two legitimate ways that are NOT errors: a signal interrupts
// the call before any byte moved (EINTR), or the kernel moves fewer bytes
// than asked (a partial transfer — routine on sockets and pipes).  Code
// that treats either as a failure, or that forgets to resume where the
// partial transfer stopped, corrupts the frame stream in ways that only
// show up under load.  These helpers centralize the retry loop so every
// framing call site transfers exactly the bytes it asked for or reports a
// real error.
//
// They are deliberately low-level (int fd, not iostreams): the analysis
// server speaks over sockets, and the tests exercise them on pipes and
// socketpairs.
#pragma once

#include <cstddef>

namespace cube {

/// Reads exactly `n` bytes into `buf`, retrying on EINTR and resuming
/// after partial reads.  Returns the number of bytes read: `n` normally,
/// fewer only when end-of-stream arrived first (0 for EOF before the
/// first byte).  Throws IoError on a real error.
std::size_t read_full(int fd, void* buf, std::size_t n);

/// Writes exactly `n` bytes from `buf`, retrying on EINTR and resuming
/// after partial writes.  Throws IoError on a real error — including
/// EPIPE, which a server must handle (an abrupt client disconnect
/// mid-response) rather than die from; callers should ensure SIGPIPE is
/// ignored or suppressed (the server uses MSG_NOSIGNAL-equivalent
/// setups / signal(SIGPIPE, SIG_IGN)).
void write_full(int fd, const void* buf, std::size_t n);

}  // namespace cube
