#include "common/error.hpp"

namespace cube {

Error::Error(const std::string& what) : std::runtime_error(what) {}

ValidationError::ValidationError(const std::string& what)
    : Error("validation: " + what) {}

OperationError::OperationError(const std::string& what)
    : Error("operation: " + what) {}

ParseError::ParseError(const std::string& what, std::size_t line,
                       std::size_t column)
    : Error("parse error at " + std::to_string(line) + ":" +
            std::to_string(column) + ": " + what),
      line_(line),
      column_(column) {}

IoError::IoError(const std::string& what) : Error("io: " + what) {}

}  // namespace cube
