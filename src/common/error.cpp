#include "common/error.hpp"

namespace cube {

Error::Error(const std::string& what) : std::runtime_error(what) {}

ValidationError::ValidationError(const std::string& what)
    : Error("validation: " + what) {}

OperationError::OperationError(const std::string& what)
    : Error("operation: " + what) {}

ParseError::ParseError(const std::string& what, std::size_t line,
                       std::size_t column)
    : Error("parse error at " + std::to_string(line) + ":" +
            std::to_string(column) + ": " + what),
      line_(line),
      column_(column) {}

IoError::IoError(const std::string& what) : Error("io: " + what) {}

namespace {

std::string check_message(const std::string& rule, const std::string& location,
                          const std::string& what) {
  std::string out = "[" + rule + "] ";
  if (!location.empty()) out += location + ": ";
  out += what;
  return out;
}

}  // namespace

CheckError::CheckError(std::string rule, std::string location,
                       const std::string& what)
    : Error(check_message(rule, location, what)),
      rule_(std::move(rule)),
      location_(std::move(location)),
      detail_(what) {}

}  // namespace cube
