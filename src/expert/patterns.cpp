#include "expert/patterns.hpp"

#include <array>

namespace cube::expert {

namespace {

constexpr std::array<PatternDef, 19> kPatterns = {{
    {kTime, "Time", "", Unit::Seconds, "Total wall-clock execution time"},
    {kExecution, "Execution", kTime, Unit::Seconds,
     "Time outside of MPI operations"},
    {kMpi, "MPI", kExecution, Unit::Seconds, "Time spent in MPI calls"},
    {kCommunication, "Communication", kMpi, Unit::Seconds,
     "Time spent in MPI communication"},
    {kCollective, "Collective", kCommunication, Unit::Seconds,
     "Collective communication"},
    {kEarlyReduce, "Early Reduce", kCollective, Unit::Seconds,
     "Root of an N-to-1 operation waiting for the first sender"},
    {kLateBroadcast, "Late Broadcast", kCollective, Unit::Seconds,
     "Waiting for a late root of a 1-to-N operation"},
    {kWaitNxN, "Wait at N x N", kCollective, Unit::Seconds,
     "Time due to inherent synchronization of N-to-N operations"},
    {kP2p, "P2P", kCommunication, Unit::Seconds,
     "Point-to-point communication"},
    {kLateReceiver, "Late Receiver", kP2p, Unit::Seconds,
     "Sender blocked until the receiver posts the matching receive"},
    {kLateSender, "Late Sender", kP2p, Unit::Seconds,
     "Receiver blocked on a message that has not been sent yet"},
    {kWrongOrder, "Messages in Wrong Order", kLateSender, Unit::Seconds,
     "Late-sender waiting caused by an inefficient acceptance order"},
    {kIo, "IO", kMpi, Unit::Seconds, "MPI file I/O"},
    {kSynchronization, "Synchronization", kMpi, Unit::Seconds,
     "Explicit synchronization"},
    {kBarrier, "Barrier", kSynchronization, Unit::Seconds,
     "Barrier synchronization"},
    {kWaitBarrier, "Wait at Barrier", kBarrier, Unit::Seconds,
     "Waiting inside the barrier for the last process to reach it"},
    {kBarrierCompletion, "Barrier Completion", kBarrier, Unit::Seconds,
     "Time inside the barrier after the first process has left it"},
    {kIdleThreads, "Idle Threads", kTime, Unit::Seconds,
     "Time worker threads spend idle inside fork-join parallel regions "
     "while waiting for the slowest thread"},
    {kVisits, "Visits", "", Unit::Occurrences, "Number of region visits"},
}};

}  // namespace

std::span<const PatternDef> pattern_table() noexcept { return kPatterns; }

void add_pattern_metrics(Metadata& metadata) {
  for (const PatternDef& def : kPatterns) {
    const Metric* parent =
        def.parent.empty() ? nullptr : metadata.find_metric(def.parent);
    metadata.add_metric(parent, std::string(def.uniq_name),
                        std::string(def.display_name), def.unit,
                        std::string(def.description));
  }
}

}  // namespace cube::expert
