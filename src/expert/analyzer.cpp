#include "expert/analyzer.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <tuple>

#include "common/error.hpp"
#include "expert/patterns.hpp"
#include "model/system_factory.hpp"
#include "sim/engine.hpp"

namespace cube::expert {

namespace {

using sim::CollKind;
using sim::EventType;
using sim::TraceEvent;

/// Call tree reconstructed from the event stream, merged across ranks.
struct CallNode {
  std::size_t region;
  std::size_t parent;  // kNoIndex for roots
  std::vector<std::size_t> children;
};

/// Per-(node, rank) accumulator that grows with the node table.
class Accum {
 public:
  explicit Accum(std::size_t num_ranks) : num_ranks_(num_ranks) {}

  void ensure(std::size_t num_nodes) {
    while (values_.size() < num_nodes) {
      values_.emplace_back(num_ranks_, 0.0);
    }
  }
  void add(std::size_t node, int rank, double v) {
    values_[node][static_cast<std::size_t>(rank)] += v;
  }
  [[nodiscard]] double get(std::size_t node, int rank) const {
    return values_[node][static_cast<std::size_t>(rank)];
  }

 private:
  std::size_t num_ranks_;
  std::vector<std::vector<double>> values_;
};

struct SendRec {
  double enter = 0.0;  ///< MPI_Send enter time
  double sent = 0.0;   ///< Send event time (transfer start)
  double bytes = 0.0;
  std::size_t node = kNoIndex;
  int rank = -1;
};

struct RecvRec {
  double enter = 0.0;  ///< MPI_Recv enter time
  double done = 0.0;   ///< Recv event time (delivery)
  std::size_t node = kNoIndex;
  int rank = -1;
  SendRec matched;
  double late_sender = 0.0;
};

struct CollRankInfo {
  double enter = 0.0;
  double exit = 0.0;
  std::size_t node = kNoIndex;
  bool seen = false;
};

struct CollRecord {
  CollKind kind = CollKind::None;
  int root = -1;
  std::vector<CollRankInfo> ranks;
};

struct OpenFrame {
  std::size_t node;
  double enter_time;
  double child_time = 0.0;
};

}  // namespace

Experiment analyze_trace(const sim::Trace& trace,
                         const AnalyzerOptions& options) {
  const int num_ranks = trace.cluster.num_ranks();

  // --- call-tree reconstruction + time attribution ---------------------------
  std::vector<CallNode> nodes;
  const auto find_or_create = [&nodes](std::size_t parent,
                                       std::size_t region) {
    if (parent == kNoIndex) {
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (nodes[i].parent == kNoIndex && nodes[i].region == region) {
          return i;
        }
      }
    } else {
      for (const std::size_t c : nodes[parent].children) {
        if (nodes[c].region == region) return c;
      }
    }
    nodes.push_back(CallNode{region, parent, {}});
    if (parent != kNoIndex) nodes[parent].children.push_back(nodes.size() - 1);
    return nodes.size() - 1;
  };

  Accum excl_time(static_cast<std::size_t>(num_ranks));
  Accum visits(static_cast<std::size_t>(num_ranks));
  Accum late_sender(static_cast<std::size_t>(num_ranks));
  Accum wrong_order(static_cast<std::size_t>(num_ranks));
  Accum late_receiver(static_cast<std::size_t>(num_ranks));
  Accum wait_nxn(static_cast<std::size_t>(num_ranks));
  Accum early_reduce(static_cast<std::size_t>(num_ranks));
  Accum late_broadcast(static_cast<std::size_t>(num_ranks));
  Accum wait_barrier(static_cast<std::size_t>(num_ranks));
  Accum barrier_completion(static_cast<std::size_t>(num_ranks));
  // Per-LOCATION (rank x thread) data from fork-join parallel regions.
  const int threads_per_proc = std::max(1, trace.cluster.threads_per_proc);
  const std::size_t num_locations =
      static_cast<std::size_t>(num_ranks) *
      static_cast<std::size_t>(threads_per_proc);
  Accum parallel_busy(num_locations);
  Accum parallel_wall(num_locations);

  using MsgKey = std::tuple<int, int, int>;
  std::map<MsgKey, std::deque<SendRec>> sends;
  std::vector<std::vector<RecvRec>> recvs_by_receiver(
      static_cast<std::size_t>(num_ranks));
  std::vector<CollRecord> collectives;

  std::vector<std::vector<OpenFrame>> stacks(
      static_cast<std::size_t>(num_ranks));

  // Replay in global time order: a matching send always precedes its
  // receive in simulated time, whatever order the trace stores events in.
  // Stability keeps same-timestamp events of one rank in program order
  // (per-rank timestamps are monotone).
  std::vector<const TraceEvent*> ordered;
  ordered.reserve(trace.events.size());
  for (const TraceEvent& e : trace.events) ordered.push_back(&e);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     return a->time < b->time;
                   });

  for (const TraceEvent* ep : ordered) {
    const TraceEvent& e = *ep;
    if (e.rank < 0 || e.rank >= num_ranks) {
      throw OperationError("trace event with rank out of range");
    }
    auto& stack = stacks[static_cast<std::size_t>(e.rank)];
    switch (e.type) {
      case EventType::Enter:
      case EventType::CollEnter: {
        const std::size_t parent = stack.empty() ? kNoIndex
                                                 : stack.back().node;
        const std::size_t node = find_or_create(parent, e.region);
        excl_time.ensure(nodes.size());
        visits.ensure(nodes.size());
        late_sender.ensure(nodes.size());
        wrong_order.ensure(nodes.size());
        late_receiver.ensure(nodes.size());
        wait_nxn.ensure(nodes.size());
        early_reduce.ensure(nodes.size());
        late_broadcast.ensure(nodes.size());
        wait_barrier.ensure(nodes.size());
        barrier_completion.ensure(nodes.size());
        parallel_busy.ensure(nodes.size());
        parallel_wall.ensure(nodes.size());
        stack.push_back(OpenFrame{node, e.time});
        visits.add(node, e.rank, 1.0);
        if (e.type == EventType::CollEnter) {
          if (collectives.size() <= e.coll_instance) {
            collectives.resize(e.coll_instance + 1);
          }
          CollRecord& rec = collectives[e.coll_instance];
          if (rec.ranks.empty()) {
            rec.kind = e.coll;
            rec.root = e.peer;
            rec.ranks.resize(static_cast<std::size_t>(num_ranks));
          }
          CollRankInfo& info = rec.ranks[static_cast<std::size_t>(e.rank)];
          info.enter = e.time;
          info.node = node;
          info.seen = true;
        }
        break;
      }
      case EventType::Exit:
      case EventType::CollExit: {
        if (stack.empty()) {
          throw OperationError("exit event without matching enter (rank " +
                               std::to_string(e.rank) + ")");
        }
        const OpenFrame frame = stack.back();
        stack.pop_back();
        const double total = e.time - frame.enter_time;
        excl_time.add(frame.node, e.rank, total - frame.child_time);
        if (!stack.empty()) stack.back().child_time += total;
        if (e.type == EventType::CollExit) {
          CollRecord& rec = collectives.at(e.coll_instance);
          rec.ranks[static_cast<std::size_t>(e.rank)].exit = e.time;
        }
        break;
      }
      case EventType::Send: {
        if (stack.empty()) {
          throw OperationError("send event outside MPI_Send region");
        }
        SendRec rec;
        rec.enter = stack.back().enter_time;
        rec.sent = e.time;
        rec.bytes = e.bytes;
        rec.node = stack.back().node;
        rec.rank = e.rank;
        sends[{e.rank, e.peer, e.tag}].push_back(rec);
        break;
      }
      case EventType::Parallel: {
        if (stack.empty()) {
          throw OperationError("parallel event outside any region");
        }
        // The engine brackets the region with Enter/Exit on the master;
        // this record carries the per-thread busy times.
        const std::size_t node = stack.back().node;
        double slowest = 0.0;
        for (const double ts : e.thread_seconds) {
          slowest = std::max(slowest, ts);
        }
        for (std::size_t t = 0; t < e.thread_seconds.size(); ++t) {
          const int loc = e.rank * threads_per_proc + static_cast<int>(t);
          parallel_busy.add(node, loc, e.thread_seconds[t]);
          parallel_wall.add(node, loc, slowest);
        }
        break;
      }
      case EventType::Recv: {
        if (stack.empty()) {
          throw OperationError("recv event outside MPI_Recv region");
        }
        RecvRec rec;
        rec.enter = stack.back().enter_time;
        rec.done = e.time;
        rec.node = stack.back().node;
        rec.rank = e.rank;
        auto it = sends.find({e.peer, e.rank, e.tag});
        if (it == sends.end() || it->second.empty()) {
          throw OperationError("receive without matching send (rank " +
                               std::to_string(e.rank) + " from " +
                               std::to_string(e.peer) + ")");
        }
        rec.matched = it->second.front();
        it->second.pop_front();
        rec.late_sender = std::clamp(rec.matched.enter - rec.enter, 0.0,
                                     rec.done - rec.enter);
        recvs_by_receiver[static_cast<std::size_t>(e.rank)].push_back(rec);
        break;
      }
    }
  }
  for (int r = 0; r < num_ranks; ++r) {
    if (!stacks[static_cast<std::size_t>(r)].empty()) {
      throw OperationError("rank " + std::to_string(r) +
                           " has unclosed regions at trace end");
    }
  }

  // --- point-to-point patterns -----------------------------------------------
  for (auto& recvs : recvs_by_receiver) {
    for (std::size_t i = 0; i < recvs.size(); ++i) {
      RecvRec& rec = recvs[i];
      if (rec.late_sender > 0.0) {
        // Wrong order: while this receive was waiting (it waited until the
        // matched sender entered its send), a message sent earlier than the
        // matched one was already on its way to this receiver but gets
        // accepted only later — an inefficient acceptance order.
        bool wrong = false;
        for (std::size_t j = i + 1; j < recvs.size() && !wrong; ++j) {
          wrong = recvs[j].matched.sent < rec.matched.sent &&
                  recvs[j].matched.sent <= rec.matched.enter;
        }
        if (wrong) {
          wrong_order.add(rec.node, rec.rank, rec.late_sender);
        } else {
          late_sender.add(rec.node, rec.rank, rec.late_sender);
        }
      }
      // Late receiver: a rendezvous sender blocked until this receive was
      // posted; charged to the sender's call path and location.
      if (rec.matched.bytes > trace.eager_threshold) {
        const double lr = std::clamp(rec.enter - rec.matched.enter, 0.0,
                                     rec.matched.sent - rec.matched.enter);
        if (lr > 0.0) {
          late_receiver.add(rec.matched.node, rec.matched.rank, lr);
        }
      }
    }
  }

  // --- collective patterns ------------------------------------------------------
  for (const CollRecord& rec : collectives) {
    if (rec.ranks.empty()) continue;
    double max_enter = 0.0;
    double min_exit = 0.0;
    bool first = true;
    for (const CollRankInfo& info : rec.ranks) {
      if (!info.seen) continue;
      max_enter = first ? info.enter : std::max(max_enter, info.enter);
      min_exit = first ? info.exit : std::min(min_exit, info.exit);
      first = false;
    }
    for (std::size_t r = 0; r < rec.ranks.size(); ++r) {
      const CollRankInfo& info = rec.ranks[r];
      if (!info.seen) continue;
      const double total = info.exit - info.enter;
      const int rank = static_cast<int>(r);
      switch (rec.kind) {
        case CollKind::Barrier: {
          const double wait = std::clamp(max_enter - info.enter, 0.0, total);
          const double completion =
              std::clamp(info.exit - min_exit, 0.0, total - wait);
          wait_barrier.add(info.node, rank, wait);
          barrier_completion.add(info.node, rank, completion);
          break;
        }
        case CollKind::AllToAll:
          wait_nxn.add(info.node, rank,
                       std::clamp(max_enter - info.enter, 0.0, total));
          break;
        case CollKind::Reduce:
          if (rank == rec.root) {
            early_reduce.add(info.node, rank,
                             std::clamp(max_enter - info.enter, 0.0, total));
          }
          break;
        case CollKind::Bcast:
          // Late Broadcast: a non-root waiting for data because the root
          // entered the 1-to-N operation later than the waiter.
          if (rank != rec.root && rec.root >= 0 &&
              rec.ranks[static_cast<std::size_t>(rec.root)].seen) {
            const double root_enter =
                rec.ranks[static_cast<std::size_t>(rec.root)].enter;
            late_broadcast.add(
                info.node, rank,
                std::clamp(root_enter - info.enter, 0.0, total));
          }
          break;
        case CollKind::None:
          break;
      }
    }
  }

  // --- assemble the experiment ----------------------------------------------------
  auto md = std::make_unique<Metadata>();
  add_pattern_metrics(*md);

  // Regions and one call site per region.
  std::vector<const Region*> regions;
  std::vector<const CallSite*> callsites;
  for (const sim::RegionInfo& r : trace.regions.all()) {
    const Region& region =
        md->add_region(r.name, r.file, r.begin_line, r.end_line);
    regions.push_back(&region);
    callsites.push_back(&md->add_callsite(region, r.file, r.begin_line));
  }

  // Call tree: nodes were created parents-first, so one pass suffices.
  // Cnode index i corresponds to call node i (insertion order).
  {
    std::vector<const Cnode*> built;
    built.reserve(nodes.size());
    for (const CallNode& n : nodes) {
      const Cnode* parent = n.parent == kNoIndex ? nullptr : built[n.parent];
      built.push_back(&md->add_cnode(parent, *callsites[n.region]));
    }
  }

  build_regular_system(*md, trace.cluster.machine_name,
                       trace.cluster.num_nodes, trace.cluster.procs_per_node,
                       options.topology, threads_per_proc);

  md->validate();
  std::shared_ptr<const Metadata> shared = freeze_metadata(std::move(md));
  if (options.interner != nullptr) {
    // A structurally identical earlier analysis wins: this copy is dropped
    // and the experiment shares the pooled instance.
    shared = options.interner->intern(std::move(shared));
  }
  Experiment experiment(std::move(shared), options.storage);
  experiment.set_name(options.experiment_name);
  experiment.set_attribute("cube::tool", "EXPERT (simulated)");

  // Re-derive entity pointers from the experiment's (possibly pooled)
  // metadata instance: positions match the build order above.
  std::vector<const Cnode*> cnodes;
  cnodes.reserve(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    cnodes.push_back(experiment.metadata().cnodes()[i].get());
  }
  std::vector<const Thread*> threads;
  threads.reserve(experiment.metadata().threads().size());
  for (const auto& t : experiment.metadata().threads()) {
    threads.push_back(t.get());
  }

  const Metadata& meta = experiment.metadata();
  const auto metric = [&meta](std::string_view uniq) -> const Metric& {
    return *meta.find_metric(uniq);
  };
  const Metric& m_execution = metric(kExecution);
  const Metric& m_p2p = metric(kP2p);
  const Metric& m_ls = metric(kLateSender);
  const Metric& m_wo = metric(kWrongOrder);
  const Metric& m_lr = metric(kLateReceiver);
  const Metric& m_coll = metric(kCollective);
  const Metric& m_nxn = metric(kWaitNxN);
  const Metric& m_er = metric(kEarlyReduce);
  const Metric& m_lb = metric(kLateBroadcast);
  const Metric& m_barrier = metric(kBarrier);
  const Metric& m_wb = metric(kWaitBarrier);
  const Metric& m_bc = metric(kBarrierCompletion);
  const Metric& m_idle = metric(kIdleThreads);
  const Metric& m_visits = metric(kVisits);

  // Master-thread severities live at location (rank, tid 0).
  const auto set_loc = [&](const Metric& m, std::size_t node, int loc,
                           double v) {
    if (v != 0.0) {
      experiment.set(m, *cnodes[node],
                     *threads[static_cast<std::size_t>(loc)], v);
    }
  };
  const auto set = [&](const Metric& m, std::size_t node, int rank,
                       double v) {
    set_loc(m, node, rank * threads_per_proc, v);
  };

  for (std::size_t node = 0; node < nodes.size(); ++node) {
    const std::string& rname = trace.regions[nodes[node].region].name;
    for (int rank = 0; rank < num_ranks; ++rank) {
      const double total = excl_time.get(node, rank);
      set(m_visits, node, rank, visits.get(node, rank));
      if (total == 0.0) continue;
      if (rname == sim::kMpiRecvRegion) {
        const double ls = late_sender.get(node, rank);
        const double wo = wrong_order.get(node, rank);
        set(m_ls, node, rank, ls);
        set(m_wo, node, rank, wo);
        set(m_p2p, node, rank, std::max(0.0, total - ls - wo));
      } else if (rname == sim::kMpiSendRegion) {
        const double lr = late_receiver.get(node, rank);
        set(m_lr, node, rank, lr);
        set(m_p2p, node, rank, std::max(0.0, total - lr));
      } else if (rname == sim::kMpiBarrierRegion) {
        const double wb = wait_barrier.get(node, rank);
        const double bc = barrier_completion.get(node, rank);
        set(m_wb, node, rank, wb);
        set(m_bc, node, rank, bc);
        set(m_barrier, node, rank, std::max(0.0, total - wb - bc));
      } else if (rname == sim::kMpiAlltoallRegion) {
        const double wn = wait_nxn.get(node, rank);
        set(m_nxn, node, rank, wn);
        set(m_coll, node, rank, std::max(0.0, total - wn));
      } else if (rname == sim::kMpiReduceRegion) {
        const double er = early_reduce.get(node, rank);
        set(m_er, node, rank, er);
        set(m_coll, node, rank, std::max(0.0, total - er));
      } else if (rname == sim::kMpiBcastRegion) {
        const double lb = late_broadcast.get(node, rank);
        set(m_lb, node, rank, lb);
        set(m_coll, node, rank, std::max(0.0, total - lb));
      } else if (rname == sim::kOmpParallelRegion) {
        // Fork-join region: every thread's busy time is Execution at its
        // own location; the rest of the region's wall time is Idle
        // Threads ("waiting for the slowest thread").  The master's
        // exclusive time equals the wall time and is fully re-attributed.
        for (int t = 0; t < threads_per_proc; ++t) {
          const int loc = rank * threads_per_proc + t;
          const double busy = parallel_busy.get(node, loc);
          const double wall = parallel_wall.get(node, loc);
          set_loc(m_execution, node, loc, busy);
          set_loc(m_idle, node, loc, std::max(0.0, wall - busy));
        }
      } else {
        set(m_execution, node, rank, total);
      }
    }
  }
  return experiment;
}

}  // namespace cube::expert
