// EXPERT's performance-problem hierarchy.
//
// EXPERT organizes detected inefficiency patterns in a specialization
// hierarchy "that contains general problems, such as large communication
// overhead, and very specific problems, such as a receiver waiting for a
// message as a result of an inefficient acceptance order".  This table is
// the hierarchy visible in the paper's Figure 1, realized as a CUBE metric
// tree (plus a Visits tree in occurrences).
#pragma once

#include <span>
#include <string_view>

#include "model/metadata.hpp"

namespace cube::expert {

/// Static definition of one pattern metric.
struct PatternDef {
  std::string_view uniq_name;
  std::string_view display_name;
  std::string_view parent;  ///< uniq_name of the parent; empty for roots
  Unit unit;
  std::string_view description;
};

// Unique names used programmatically by the analyzer.
inline constexpr std::string_view kTime = "time";
inline constexpr std::string_view kExecution = "execution";
inline constexpr std::string_view kMpi = "mpi";
inline constexpr std::string_view kCommunication = "mpi_communication";
inline constexpr std::string_view kCollective = "mpi_coll_communication";
inline constexpr std::string_view kEarlyReduce = "mpi_earlyreduce";
inline constexpr std::string_view kLateBroadcast = "mpi_latebroadcast";
inline constexpr std::string_view kWaitNxN = "mpi_wait_nxn";
inline constexpr std::string_view kP2p = "mpi_point2point";
inline constexpr std::string_view kLateReceiver = "mpi_latereceiver";
inline constexpr std::string_view kLateSender = "mpi_latesender";
inline constexpr std::string_view kWrongOrder = "mpi_wrong_order";
inline constexpr std::string_view kIo = "mpi_io";
inline constexpr std::string_view kSynchronization = "mpi_synchronization";
inline constexpr std::string_view kBarrier = "mpi_barrier";
inline constexpr std::string_view kWaitBarrier = "mpi_wait_barrier";
inline constexpr std::string_view kBarrierCompletion =
    "mpi_barrier_completion";
inline constexpr std::string_view kIdleThreads = "idle_threads";
inline constexpr std::string_view kVisits = "visits";

/// The full pattern table, parents before children.
[[nodiscard]] std::span<const PatternDef> pattern_table() noexcept;

/// Instantiates the pattern hierarchy in `metadata`; returns nothing — look
/// metrics up by unique name afterwards.
void add_pattern_metrics(Metadata& metadata);

}  // namespace cube::expert
