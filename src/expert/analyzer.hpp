// EXPERT-style post-mortem trace analysis.
//
// Replays a simulator event trace, reconstructs the call tree, searches the
// trace for inefficiency patterns (Late Sender / Messages in Wrong Order /
// Late Receiver / Wait at N x N / Early Reduce / Wait at Barrier / Barrier
// Completion), and emits the result as a CUBE experiment mapping
// (performance problem, call path, location) onto the time lost to that
// problem — exactly the compact representation the paper describes.
//
// Severity convention (see model/experiment.hpp): every second of a
// location's run time is attributed to exactly one most-specific pattern
// metric at exactly one call path.
#pragma once

#include <string>
#include <vector>

#include "model/experiment.hpp"
#include "sim/trace.hpp"

namespace cube::expert {

/// Analysis options.
struct AnalyzerOptions {
  std::string experiment_name = "expert";
  StorageKind storage = StorageKind::Dense;
  /// Optional per-rank Cartesian coordinates for the topology extension.
  std::vector<std::vector<long>> topology;
  /// Optional interner: analyses of structurally identical traces (e.g. a
  /// repetition series under different noise seeds) then share one frozen
  /// metadata instance instead of carrying one copy each.  Must outlive
  /// the call; the returned experiment only keeps a shared_ptr.
  MetadataInterner* interner = nullptr;
};

/// Analyzes `trace` and returns the experiment.  Throws OperationError on
/// malformed traces (unbalanced enters, unmatched messages).
[[nodiscard]] Experiment analyze_trace(const sim::Trace& trace,
                                       const AnalyzerOptions& options = {});

}  // namespace cube::expert
