// SlowQueryLog: a bounded in-memory log of the N worst queries by wall
// time (docs/SERVER.md).
//
// Every query the service finishes is offered to the log with its
// canonical plan text, outcome, and per-phase durations; the log keeps
// the `capacity` slowest of those at or above `threshold_ms`.  Scrapes
// (the Stats endpoint) read a deterministic worst-first order: wall time
// descending, arrival order ascending as the tie-break.
//
// The hot path is cheap by construction: one relaxed atomic load rejects
// queries that cannot displace the current floor before any lock is
// taken, so a warm server whose fast traffic never beats its recorded
// worst pays one load and one branch per query.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_safety.hpp"
#include "server/protocol.hpp"

namespace cube::server {

class SlowQueryLog {
 public:
  /// `capacity` 0 disables the log entirely; `threshold_ms` is the
  /// minimum wall time a query must reach to be considered.
  explicit SlowQueryLog(std::size_t capacity = 32, double threshold_ms = 0.0);

  /// Offers one finished query.  `entry.sequence` is assigned by the log
  /// (arrival order); the other fields are the caller's.
  void record(WireSlowQuery entry);

  /// The kept entries, worst first (server_ms descending, then sequence
  /// ascending).
  [[nodiscard]] std::vector<WireSlowQuery> snapshot() const;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] double threshold_ms() const noexcept { return threshold_ms_; }

 private:
  const std::size_t capacity_;
  const double threshold_ms_;
  /// Smallest wall time that can still displace an entry once the log is
  /// full; -inf while slots remain.  Read without the mutex as the
  /// fast-path rejection test.
  std::atomic<double> floor_ms_;
  std::atomic<std::uint64_t> next_sequence_{1};

  mutable ts::Mutex mutex_;
  std::vector<WireSlowQuery> entries_ CUBE_GUARDED_BY(mutex_);
};

}  // namespace cube::server
