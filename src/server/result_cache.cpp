#include "server/result_cache.hpp"

#include <stdexcept>
#include <utility>

namespace cube::server {

ResultCache::Lookup ResultCache::acquire(std::uint64_t key) {
  std::unique_lock<std::mutex> lock(mutex_.native());
  for (;;) {
    auto it = slots_.find(key);
    if (it == slots_.end()) {
      slots_.emplace(key, std::make_shared<Slot>());
      return Lookup{Outcome::Owner, nullptr};
    }
    // Hold the slot by shared_ptr: fail() erases it from the map while
    // waiters are still parked on it.
    std::shared_ptr<Slot> slot = it->second;
    if (slot->state == Slot::State::Ready) {
      lru_.splice(lru_.begin(), lru_, slot->lru);  // touch
      return Lookup{Outcome::Hit, slot->result};
    }
    cv_.wait(lock, [&] { return slot->state != Slot::State::InFlight; });
    if (slot->state == Slot::State::Ready) {
      return Lookup{Outcome::Coalesced, slot->result};
    }
    // Each waiter throws its own fresh exception object (see fail()).
    slot->rethrow();
    throw std::logic_error("ResultCache::fail rethrow did not throw");
  }
}

std::shared_ptr<const CachedResult> ResultCache::publish(std::uint64_t key,
                                                         CachedResult result) {
  auto shared = std::make_shared<const CachedResult>(std::move(result));
  ts::MutexLock lock(mutex_);
  auto it = slots_.find(key);
  if (it == slots_.end()) return shared;  // raced a clear(); serve uncached
  Slot& slot = *it->second;
  slot.result = shared;
  slot.state = Slot::State::Ready;
  lru_.push_front(key);
  slot.lru = lru_.begin();
  ready_bytes_ += slot.result->bytes();
  evict_locked();
  cv_.notify_all();
  return shared;
}

void ResultCache::fail(std::uint64_t key, std::function<void()> rethrow) {
  ts::MutexLock lock(mutex_);
  auto it = slots_.find(key);
  if (it == slots_.end()) return;
  std::shared_ptr<Slot> slot = it->second;
  slot->rethrow = std::move(rethrow);
  slot->state = Slot::State::Failed;
  // Erase now: waiters keep the slot alive through their shared_ptr, and
  // the next acquire() of the key starts a fresh computation.
  slots_.erase(it);
  cv_.notify_all();
}

std::size_t ResultCache::size_bytes() const {
  ts::MutexLock lock(mutex_);
  return ready_bytes_;
}

std::size_t ResultCache::entries() const {
  ts::MutexLock lock(mutex_);
  return lru_.size();
}

std::uint64_t ResultCache::evictions() const {
  ts::MutexLock lock(mutex_);
  return evictions_;
}

void ResultCache::clear() {
  ts::MutexLock lock(mutex_);
  for (auto it = slots_.begin(); it != slots_.end();) {
    if (it->second->state == Slot::State::Ready) {
      it = slots_.erase(it);
    } else {
      ++it;
    }
  }
  lru_.clear();
  ready_bytes_ = 0;
}

void ResultCache::evict_locked() {
  while (ready_bytes_ > capacity_bytes_ && !lru_.empty()) {
    const std::uint64_t victim = lru_.back();
    auto it = slots_.find(victim);
    if (it != slots_.end() && it->second->state == Slot::State::Ready) {
      ready_bytes_ -= it->second->result->bytes();
      slots_.erase(it);
    }
    lru_.pop_back();
    ++evictions_;
  }
}

}  // namespace cube::server
