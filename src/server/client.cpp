#include "server/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <utility>

#include "io/binary_format.hpp"
#include "io/meta_format.hpp"

namespace cube::server {

namespace {

int connect_unix(const std::filesystem::path& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const std::string spath = path.string();
  if (spath.size() >= sizeof(addr.sun_path)) {
    throw IoError("socket path too long for sockaddr_un: " + spath);
  }
  std::memcpy(addr.sun_path, spath.c_str(), spath.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw IoError(std::string("socket: ") + std::strerror(errno));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int saved = errno;
    ::close(fd);
    throw IoError("connect " + spath + ": " + std::strerror(saved));
  }
  return fd;
}

}  // namespace

CubeClient::CubeClient(ClientConfig config) : config_(std::move(config)) {
  // A server vanishing mid-write must surface as EPIPE/IoError, not kill
  // the client process.
  ::signal(SIGPIPE, SIG_IGN);
  fd_ = connect_unix(config_.socket_path);
  // Seed auto-assigned request ids so two sessions against one daemon do
  // not both start at 1 (a SplitMix64 step over pid ^ connect time; the
  // low bits stay an in-session sequence, which keeps ids readable).
  {
    std::uint64_t seed =
        (static_cast<std::uint64_t>(::getpid()) << 32) ^
        static_cast<std::uint64_t>(
            std::chrono::steady_clock::now().time_since_epoch().count());
    seed += 0x9e3779b97f4a7c15ull;
    seed = (seed ^ (seed >> 30)) * 0xbf58476d1ce4e5b9ull;
    seed = (seed ^ (seed >> 27)) * 0x94d049bb133111ebull;
    next_request_id_ = (seed << 20) | 1;  // never 0
  }
  try {
    HelloPayload hello;
    hello.client = config_.name;
    const Frame reply =
        round_trip(MsgType::Hello, encode_hello(hello), MsgType::HelloOk);
    const HelloOkPayload ok = decode_hello_ok(reply.payload);
    if (ok.version != kProtocolVersion) {
      throw ProtocolError("server speaks protocol version " +
                          std::to_string(ok.version) + ", client speaks " +
                          std::to_string(kProtocolVersion));
    }
    generation_ = ok.generation;
    server_name_ = ok.server;
  } catch (...) {
    ::close(fd_);
    fd_ = -1;
    throw;
  }
}

CubeClient::~CubeClient() {
  if (fd_ >= 0) ::close(fd_);
}

Frame CubeClient::round_trip(MsgType type, std::string_view payload,
                             MsgType expected) {
  (void)write_frame(fd_, type, payload);
  std::optional<Frame> reply = read_frame(fd_, config_.max_payload);
  if (!reply) {
    throw IoError("server closed the connection before replying");
  }
  if (reply->type == MsgType::Error) {
    throw RemoteError(decode_error(reply->payload));
  }
  if (reply->type != expected) {
    throw ProtocolError(std::string("expected ") + msg_type_name(expected) +
                        ", got " + msg_type_name(reply->type));
  }
  return std::move(*reply);
}

ResultPayload CubeClient::query_raw(const std::string& text,
                                    std::uint64_t request_id) {
  QueryPayload query;
  query.text = text;
  query.request_id = request_id != 0 ? request_id : next_request_id_++;
  last_request_id_ = query.request_id;
  const std::string encoded = encode_query(query);
  (void)write_frame(fd_, MsgType::Query, encoded);
  std::optional<Frame> reply = read_frame(fd_, config_.max_payload);
  if (!reply) {
    throw IoError("server closed the connection before replying");
  }
  switch (reply->type) {
    case MsgType::Result:
      return decode_result(reply->payload);
    case MsgType::Busy:
      throw BusyError(decode_busy(reply->payload));
    case MsgType::Error:
      throw RemoteError(decode_error(reply->payload));
    default:
      throw ProtocolError(std::string("expected Result, got ") +
                          msg_type_name(reply->type));
  }
}

ClientResult CubeClient::query(const std::string& text,
                               std::uint64_t request_id) {
  QueryPayload query;
  query.text = text;
  query.request_id = request_id != 0 ? request_id : next_request_id_++;
  last_request_id_ = query.request_id;
  const std::string encoded = encode_query(query);
  (void)write_frame(fd_, MsgType::Query, encoded);
  std::optional<Frame> reply = read_frame(fd_, config_.max_payload);
  if (!reply) {
    throw IoError("server closed the connection before replying");
  }
  if (reply->type == MsgType::Busy) {
    throw BusyError(decode_busy(reply->payload));
  }
  if (reply->type == MsgType::Error) {
    throw RemoteError(decode_error(reply->payload));
  }
  if (reply->type != MsgType::Result) {
    throw ProtocolError(std::string("expected Result, got ") +
                        msg_type_name(reply->type));
  }
  const std::size_t wire_bytes = reply->payload.size();
  ResultPayload result = decode_result(reply->payload);

  if (!result.meta_blob.empty()) {
    std::shared_ptr<const Metadata> md = read_cube_meta(result.meta_blob);
    metas_[md->digest()] = std::move(md);
  }
  ClientResult out{
      read_cube_binary(result.body, config_.storage,
                       [this](std::uint64_t digest) {
                         auto it = metas_.find(digest);
                         return it == metas_.end() ? nullptr : it->second;
                       }),
      result.served,
      std::move(result.canonical),
      result.server_ms,
      wire_bytes,
      !result.meta_blob.empty()};
  return out;
}

StatsPayload CubeClient::stats() {
  const Frame reply = round_trip(MsgType::Stats, {}, MsgType::StatsOk);
  return decode_stats(reply.payload);
}

HealthPayload CubeClient::health() {
  const Frame reply = round_trip(MsgType::Health, {}, MsgType::HealthOk);
  return decode_health(reply.payload);
}

void CubeClient::ping() {
  (void)round_trip(MsgType::Ping, {}, MsgType::Pong);
}

void CubeClient::shutdown_server() {
  (void)round_trip(MsgType::Shutdown, {}, MsgType::ShutdownOk);
}

}  // namespace cube::server
