#include "server/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <set>
#include <utility>

#include "common/error.hpp"
#include "obs/tracer.hpp"

namespace cube::server {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw IoError(what + ": " + std::strerror(errno));
}

int bind_unix_listener(const std::filesystem::path& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const std::string spath = path.string();
  if (spath.size() >= sizeof(addr.sun_path)) {
    throw IoError("socket path too long for sockaddr_un: " + spath);
  }
  std::memcpy(addr.sun_path, spath.c_str(), spath.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  // The daemon owns its socket path; a leftover file from a previous run
  // (crash, unclean container stop) would otherwise block the bind.
  ::unlink(spath.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("bind " + spath);
  }
  if (::listen(fd, 64) != 0) {
    const int saved = errno;
    ::close(fd);
    ::unlink(spath.c_str());
    errno = saved;
    throw_errno("listen " + spath);
  }
  return fd;
}

void send_error_best_effort(int fd, const std::string& category,
                            const std::string& message) {
  try {
    (void)write_frame(fd, MsgType::Error,
                      encode_error(ErrorPayload{category, message}));
  } catch (const Error&) {
    // The peer is gone; nothing left to tell it.
  }
}

}  // namespace

CubedServer::CubedServer(AnalysisService& service, ServerConfig config)
    : service_(service), config_(std::move(config)) {}

CubedServer::~CubedServer() { stop(); }

void CubedServer::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (started_) return;
  ::signal(SIGPIPE, SIG_IGN);
  listen_fd_ = bind_unix_listener(config_.socket_path);
  started_ = true;
  acceptor_ = std::thread([this] { accept_loop(); });
  if (config_.refresh_interval_ms > 0) {
    housekeeper_ = std::thread([this] { housekeeping_loop(); });
  }
}

void CubedServer::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested_ || stopped_; });
}

void CubedServer::request_shutdown() {
  std::lock_guard<std::mutex> lock(mutex_);
  shutdown_requested_ = true;
  shutdown_cv_.notify_all();
}

void CubedServer::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_ || stopped_) return;
    stopped_ = true;
    shutdown_requested_ = true;
    shutdown_cv_.notify_all();
  }
  stopping_.store(true, std::memory_order_release);
  // Unblock the acceptor (shutdown makes accept() fail immediately), then
  // join it before closing or clearing the fd it reads.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  if (housekeeper_.joinable()) housekeeper_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& session : sessions_) ::shutdown(session->fd, SHUT_RDWR);
  }
  for (auto& session : sessions_) {
    if (session->thread.joinable()) session->thread.join();
    ::close(session->fd);
  }
  sessions_.clear();
  ::unlink(config_.socket_path.c_str());
}

void CubedServer::reap_finished_sessions() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      ::close((*it)->fd);
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

void CubedServer::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by stop()
    }
    reap_finished_sessions();
    accepted_.fetch_add(1, std::memory_order_relaxed);
    auto session = std::make_unique<Session>();
    session->fd = fd;
    Session& ref = *session;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      sessions_.push_back(std::move(session));
    }
    ref.thread = std::thread([this, &ref] { session_loop(ref); });
  }
}

void CubedServer::housekeeping_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopped_ && !shutdown_requested_) {
    shutdown_cv_.wait_for(
        lock, std::chrono::milliseconds(config_.refresh_interval_ms));
    if (stopped_ || shutdown_requested_) break;
    lock.unlock();
    try {
      service_.housekeeping_tick();
    } catch (const Error&) {
      // A torn read against a concurrent writer; the next tick retries.
    }
    lock.lock();
  }
}

void CubedServer::session_loop(Session& session) {
  OBS_SPAN("server.session");
  const int fd = session.fd;
  // Signals end-of-session to the peer immediately.  The fd itself stays
  // open until this thread is joined (reap or stop), so shutdown() here
  // never races a close.
  const auto finish = [&] {
    ::shutdown(fd, SHUT_RDWR);
    session.done.store(true, std::memory_order_release);
  };
  /// Metadata digests this session has already received a blob for.
  std::set<std::uint64_t> sent_metas;
  try {
    // Handshake: the first frame must be Hello with a matching version.
    std::optional<Frame> first = read_frame(fd, config_.max_payload);
    if (!first) {
      finish();
      return;
    }
    if (first->type != MsgType::Hello) {
      throw ProtocolError(std::string("expected Hello, got ") +
                          msg_type_name(first->type));
    }
    const HelloPayload hello = decode_hello(first->payload);
    if (hello.version != kProtocolVersion) {
      throw ProtocolError("protocol version " + std::to_string(hello.version) +
                          " not supported (server speaks " +
                          std::to_string(kProtocolVersion) + ")");
    }
    HelloOkPayload ok;
    ok.server = config_.name;
    ok.generation = service_.generation();
    (void)write_frame(fd, MsgType::HelloOk, encode_hello_ok(ok));

    while (auto frame = read_frame(fd, config_.max_payload)) {
      switch (frame->type) {
        case MsgType::Query: {
          const QueryPayload query = decode_query(frame->payload);
          const QueryOutcome outcome =
              service_.handle_query(query.text, query.request_id);
          switch (outcome.status) {
            case QueryOutcome::Status::Ok: {
              ResultPayload result;
              result.served = outcome.served;
              result.canonical = outcome.result->canonical;
              result.server_ms = outcome.server_ms;
              result.body = *outcome.result->body;
              if (sent_metas.insert(outcome.result->meta_digest).second) {
                result.meta_blob = *outcome.result->meta_blob;
              }
              (void)write_frame(fd, MsgType::Result, encode_result(result));
              break;
            }
            case QueryOutcome::Status::Busy:
              (void)write_frame(fd, MsgType::Busy, encode_busy(outcome.busy));
              break;
            case QueryOutcome::Status::Error:
              (void)write_frame(fd, MsgType::Error,
                                encode_error(outcome.error));
              break;
          }
          break;
        }
        case MsgType::Ping:
          (void)write_frame(fd, MsgType::Pong, {});
          break;
        case MsgType::Stats:
          (void)write_frame(fd, MsgType::StatsOk,
                            encode_stats(service_.stats()));
          break;
        case MsgType::Health:
          // Answered on the session thread: health must respond even when
          // the compute pool is saturated.
          (void)write_frame(
              fd, MsgType::HealthOk,
              encode_health(HealthPayload{service_.health_json()}));
          break;
        case MsgType::Shutdown:
          if (!config_.allow_shutdown) {
            (void)write_frame(
                fd, MsgType::Error,
                encode_error(ErrorPayload{
                    "protocol", "shutdown is disabled on this server"}));
            break;
          }
          (void)write_frame(fd, MsgType::ShutdownOk, {});
          request_shutdown();
          finish();
          return;
        default:
          // A server-to-client type (or repeated Hello) from the peer is
          // a protocol violation.
          throw ProtocolError(std::string("unexpected ") +
                              msg_type_name(frame->type) +
                              " frame from a client");
      }
    }
  } catch (const ProtocolError& e) {
    send_error_best_effort(fd, "protocol", e.what());
  } catch (const IoError&) {
    // The peer disconnected mid-frame or mid-response; nothing to answer.
  } catch (const std::exception& e) {
    send_error_best_effort(fd, "internal", e.what());
  }
  finish();
}

}  // namespace cube::server
