// cubed wire protocol: length-prefixed binary frames (docs/SERVER.md).
//
// A connection carries a sequence of FRAMES, each a fixed 16-byte header
// followed by a payload:
//
//     u32 magic "CUBS"   (0x53425543 little-endian)
//     u32 type           (MsgType)
//     u64 payload_len    (bytes that follow; bounded by max_payload)
//     ... payload ...
//
// Payloads are encoded with the same little-endian codec the CUBEBIN2 /
// CUBEMET1 file formats use (io/binary_codec.hpp): u32/u64/f64 fields and
// u32-length-prefixed strings.  Experiment results travel AS the file
// formats themselves: a Result payload carries a CUBEBIN2 by-reference
// experiment body plus — the first time a session sees a given metadata
// digest — the CUBEMET1 blob it references, so a series of results over
// one metadata ships the metadata once per session, mirroring how the
// repository stores it once per store.
//
// Framing reads and writes go through the EINTR-safe helpers in
// common/posix_io.hpp: a signal or a partial socket transfer must never
// tear a frame.  Malformed input (bad magic, oversized length prefix,
// truncated payload) raises ProtocolError — a structured, recoverable
// failure the server answers with an Error frame before closing the
// session; it never crashes the daemon.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace cube::server {

inline constexpr std::uint32_t kProtocolVersion = 1;
/// "CUBS" read as a little-endian u32.
inline constexpr std::uint32_t kFrameMagic = 0x53425543u;
/// Default ceiling on a single frame's payload.  A length prefix beyond
/// the reader's ceiling is rejected BEFORE any allocation: a garbage or
/// hostile prefix must not look like a 16-exabyte read.
inline constexpr std::uint64_t kDefaultMaxPayload = 1ull << 30;

/// The peer violated the framing or payload encoding.
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what) : Error(what) {}
};

enum class MsgType : std::uint32_t {
  Hello = 1,    ///< client -> server: version + client name
  HelloOk,      ///< server -> client: version + server name + generation
  Query,        ///< client -> server: query text
  Result,       ///< server -> client: CUBEMET1? + CUBEBIN2 + stats
  Error,        ///< server -> client: structured failure
  Busy,         ///< server -> client: admission control shed the request
  Ping,         ///< client -> server: liveness probe
  Pong,         ///< server -> client
  Stats,        ///< client -> server: request the server metrics
  StatsOk,      ///< server -> client: metric samples
  Shutdown,     ///< client -> server: drain and exit
  ShutdownOk,   ///< server -> client: shutdown acknowledged
  Health,       ///< client -> server: request the health document
  HealthOk,     ///< server -> client: small deterministic JSON document
};

/// Human-readable message-type name for logs and errors.
[[nodiscard]] const char* msg_type_name(MsgType type) noexcept;

struct Frame {
  MsgType type = MsgType::Error;
  std::string payload;
};

/// Writes one frame; returns the total bytes put on the wire.  Throws
/// IoError on transport failure (including EPIPE from a vanished peer).
std::size_t write_frame(int fd, MsgType type, std::string_view payload);

/// Reads one frame.  Returns std::nullopt on a clean end-of-stream AT a
/// frame boundary (the peer closed between frames).  Throws ProtocolError
/// on bad magic, an unknown type, an oversized length prefix, or a stream
/// that ends mid-frame; IoError on transport failure.
[[nodiscard]] std::optional<Frame> read_frame(
    int fd, std::uint64_t max_payload = kDefaultMaxPayload);

// --- payloads -------------------------------------------------------------

struct HelloPayload {
  std::uint32_t version = kProtocolVersion;
  std::string client;
};

struct HelloOkPayload {
  std::uint32_t version = kProtocolVersion;
  std::string server;
  std::uint64_t generation = 0;  ///< repository generation at accept time
};

struct QueryPayload {
  std::string text;
  std::uint32_t flags = 0;  ///< reserved, must be 0
  /// Client-generated id threaded through the server's spans and the
  /// slow-query log, so a slow entry scraped from Stats can be matched to
  /// the client call that caused it.  0 = unset.  Appended to the wire
  /// format: a payload that ends after `flags` (a pre-telemetry peer)
  /// decodes with request_id 0.
  std::uint64_t request_id = 0;
};

/// How a Result was produced — the cross-client sharing ablation point.
enum class Served : std::uint32_t {
  Computed = 0,   ///< executed on the pool (cache miss)
  CacheHit = 1,   ///< served from the shared result cache
  Coalesced = 2,  ///< waited on another client's identical in-flight query
};

struct ResultPayload {
  Served served = Served::Computed;
  /// CUBEMET1 blob bytes; empty when the session already holds the
  /// referenced metadata digest.
  std::string meta_blob;
  /// CUBEBIN2 by-reference experiment bytes.
  std::string body;
  std::string canonical;  ///< canonical root expression
  double server_ms = 0.0; ///< service time observed by the server
};

/// One structured finding attached to an Error frame — the wire form of a
/// lint::Diagnostic, so clients can render rule ids and locations instead
/// of re-parsing a flattened message.
struct WireDiagnostic {
  std::string rule;          ///< stable id, e.g. "plan.metric-unit"
  std::uint32_t level = 0;   ///< lint::Level as u32 (Note/Warning/Error)
  std::string location;      ///< canonical sub-expression
  std::string message;
  std::string hint;          ///< empty when the finding has none
};

struct ErrorPayload {
  /// Coarse category: "parse", "plan", "analysis", "eval", "protocol",
  /// "internal".
  std::string category;
  std::string message;
  /// Structured findings (admission-control rejections carry the
  /// analyzer's plan.*/cost.* diagnostics here).  Absent on the wire for
  /// pre-diagnostic peers: the decoder treats a payload that ends after
  /// `message` as an empty list.
  std::vector<WireDiagnostic> diagnostics;
};

struct BusyPayload {
  std::uint32_t retry_ms = 0;   ///< suggested client backoff
  std::uint64_t inflight = 0;   ///< computations in flight at shed time
  double queue_wait_ms = 0.0;   ///< recent executor queue wait
  std::string reason;
};

/// One slow-query log entry on the wire (worst queries by wall time, with
/// per-phase durations; docs/SERVER.md).
struct WireSlowQuery {
  std::uint64_t request_id = 0;  ///< client-provided id; 0 = unset
  std::string canonical;         ///< canonical plan text (raw text if
                                 ///< the query never planned)
  /// How the query ended: "computed", "hit", "coalesced", "busy",
  /// "rejected", "error".
  std::string outcome;
  double server_ms = 0.0;
  double plan_ms = 0.0;       ///< parse + plan + admission analysis
  double compute_ms = 0.0;    ///< pool execution (owner path only)
  double serialize_ms = 0.0;  ///< wire-format encoding (owner path only)
  std::uint64_t sequence = 0; ///< arrival order, server-unique
};

struct StatsPayload {
  std::vector<obs::MetricSample> samples;
  /// The full telemetry document ({"server":…,"metrics":…,
  /// "slow_queries":…}), byte-deterministic for a given server state.
  /// Appended to the wire format: empty from a pre-telemetry peer.
  std::string json;
  /// Slow-query log, worst first.  Appended after `json`.
  std::vector<WireSlowQuery> slow;
};

struct HealthPayload {
  /// {"status":…,"uptime_s":…,…} — see docs/SERVER.md.
  std::string json;
};

[[nodiscard]] std::string encode_hello(const HelloPayload& p);
[[nodiscard]] HelloPayload decode_hello(std::string_view payload);
[[nodiscard]] std::string encode_hello_ok(const HelloOkPayload& p);
[[nodiscard]] HelloOkPayload decode_hello_ok(std::string_view payload);
[[nodiscard]] std::string encode_query(const QueryPayload& p);
[[nodiscard]] QueryPayload decode_query(std::string_view payload);
[[nodiscard]] std::string encode_result(const ResultPayload& p);
[[nodiscard]] ResultPayload decode_result(std::string_view payload);
[[nodiscard]] std::string encode_error(const ErrorPayload& p);
[[nodiscard]] ErrorPayload decode_error(std::string_view payload);
[[nodiscard]] std::string encode_busy(const BusyPayload& p);
[[nodiscard]] BusyPayload decode_busy(std::string_view payload);
[[nodiscard]] std::string encode_stats(const StatsPayload& p);
[[nodiscard]] StatsPayload decode_stats(std::string_view payload);
[[nodiscard]] std::string encode_health(const HealthPayload& p);
[[nodiscard]] HealthPayload decode_health(std::string_view payload);

}  // namespace cube::server
