#include "server/telemetry.hpp"

#include <algorithm>
#include <limits>
#include <utility>

namespace cube::server {

SlowQueryLog::SlowQueryLog(std::size_t capacity, double threshold_ms)
    : capacity_(capacity),
      threshold_ms_(threshold_ms),
      floor_ms_(-std::numeric_limits<double>::infinity()) {}

void SlowQueryLog::record(WireSlowQuery entry) {
  if (capacity_ == 0) return;
  if (entry.server_ms < threshold_ms_) return;
  // Fast path: a query that cannot displace the recorded worst set is
  // rejected on one relaxed load, before the mutex.
  if (entry.server_ms <= floor_ms_.load(std::memory_order_relaxed)) return;
  ts::MutexLock lock(mutex_);
  entry.sequence = next_sequence_.fetch_add(1, std::memory_order_relaxed);
  if (entries_.size() < capacity_) {
    entries_.push_back(std::move(entry));
  } else {
    auto weakest = std::min_element(
        entries_.begin(), entries_.end(),
        [](const WireSlowQuery& a, const WireSlowQuery& b) {
          if (a.server_ms != b.server_ms) return a.server_ms < b.server_ms;
          return a.sequence > b.sequence;  // on a tie the newest goes first
        });
    if (entry.server_ms <= weakest->server_ms) return;  // raced past floor
    *weakest = std::move(entry);
  }
  if (entries_.size() == capacity_) {
    double floor = entries_.front().server_ms;
    for (const WireSlowQuery& e : entries_) {
      floor = std::min(floor, e.server_ms);
    }
    floor_ms_.store(floor, std::memory_order_relaxed);
  }
}

std::vector<WireSlowQuery> SlowQueryLog::snapshot() const {
  std::vector<WireSlowQuery> out;
  {
    ts::MutexLock lock(mutex_);
    out = entries_;
  }
  std::sort(out.begin(), out.end(),
            [](const WireSlowQuery& a, const WireSlowQuery& b) {
              if (a.server_ms != b.server_ms) return a.server_ms > b.server_ms;
              return a.sequence < b.sequence;
            });
  return out;
}

}  // namespace cube::server
