#include "server/service.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <exception>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "io/binary_format.hpp"
#include "io/meta_format.hpp"
#include "obs/json_export.hpp"
#include "obs/self_profile.hpp"
#include "obs/tracer.hpp"
#include "query/analyze.hpp"
#include "query/query_expr.hpp"

namespace cube::server {

namespace {

/// Internal marker: the query text itself failed to parse (parse_query
/// reports this as a plain Error, which would otherwise be
/// indistinguishable from a planning failure).
class QueryParseError : public Error {
 public:
  using Error::Error;
};

/// Internal signal: an owned computation was shed by admission control.
/// Thrown through ResultCache::fail so coalesced waiters surface the same
/// structured Busy outcome as the shedding owner.
class BusyShed : public Error {
 public:
  explicit BusyShed(BusyPayload payload)
      : Error("busy: " + payload.reason), payload_(std::move(payload)) {}
  [[nodiscard]] const BusyPayload& payload() const noexcept {
    return payload_;
  }

 private:
  BusyPayload payload_;
};

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

QueryOutcome error_outcome(std::string category, std::string message) {
  QueryOutcome out;
  out.status = QueryOutcome::Status::Error;
  out.error = ErrorPayload{std::move(category), std::move(message)};
  return out;
}

}  // namespace

AnalysisService::AnalysisService(ExperimentRepository& repo,
                                 ServiceConfig config)
    : config_(std::move(config)),
      repo_(repo),
      cache_(config_.cache_capacity_bytes),
      queries_(obs::MetricsRegistry::global().counter("server.queries")),
      cache_hits_(obs::MetricsRegistry::global().counter("server.cache_hits")),
      coalesced_(obs::MetricsRegistry::global().counter("server.coalesced")),
      computes_(obs::MetricsRegistry::global().counter("server.computes")),
      busy_(obs::MetricsRegistry::global().counter("server.busy")),
      rejected_(obs::MetricsRegistry::global().counter("server.rejected")),
      errors_(obs::MetricsRegistry::global().counter("server.errors")),
      queue_wait_hist_(obs::MetricsRegistry::global().histogram(
          "server.queue_wait", obs::SampleUnit::Seconds)),
      service_time_(obs::MetricsRegistry::global().histogram(
          "server.service_time", obs::SampleUnit::Seconds)),
      inflight_gauge_(obs::MetricsRegistry::global().gauge("server.inflight")),
      inflight_peak_(
          obs::MetricsRegistry::global().gauge("server.inflight_peak")),
      cache_bytes_(obs::MetricsRegistry::global().gauge(
          "server.cache_bytes", obs::SampleUnit::Bytes)),
      start_(std::chrono::steady_clock::now()),
      slow_log_(config_.slow_log_capacity, config_.slow_log_threshold_ms) {
  if (config_.threads == 0) config_.threads = ThreadPool::default_threads();
  if (config_.max_inflight == 0) config_.max_inflight = 2 * config_.threads;
  window_ =
      std::make_unique<obs::RegistryWindow>(obs::MetricsRegistry::global());
  next_window_ns_ =
      now_ns() +
      static_cast<std::int64_t>(config_.self_profile_interval_s) * 1000000000;
  pool_ = std::make_unique<ThreadPool>(config_.threads);

  query::QueryOptions options;
  options.threads = config_.threads;
  options.store_derived = config_.store_derived;
  options.validate_loads = config_.validate_loads;
  engine_ = std::make_unique<query::QueryEngine>(repo_, options, *pool_);
}

AnalysisService::~AnalysisService() = default;

AnalysisService::PlannedQuery AnalysisService::resolve_plan(
    const std::string& text) {
  const std::uint64_t epoch = plan_epoch_.load(std::memory_order_acquire);
  {
    ts::MutexLock lock(plan_mutex_);
    auto it = plan_cache_.find(text);
    if (it != plan_cache_.end() && it->second.epoch == epoch) {
      return it->second;
    }
  }
  OBS_SPAN("server.plan");
  // parse_query reports syntax problems as plain Error; promote them so
  // the wire error category distinguishes parse from plan failures.
  std::unique_ptr<query::QueryExpr> expr;
  try {
    expr = query::parse_query(text);
  } catch (const Error& e) {
    throw QueryParseError(e.what());
  }
  PlannedQuery planned;
  planned.epoch = epoch;
  planned.plan =
      std::make_shared<const query::QueryPlan>(engine_->plan(*expr));
  planned.key = planned.plan->nodes[planned.plan->root].key;
  planned.canonical = planned.plan->nodes[planned.plan->root].canonical;
  if (config_.admission_analysis) analyze_admission(planned);
  {
    ts::MutexLock lock(plan_mutex_);
    plan_cache_[text] = planned;
  }
  return planned;
}

void AnalysisService::analyze_admission(PlannedQuery& planned) {
  OBS_SPAN("server.analyze");
  lint::DiagnosticSink sink;
  query::AnalyzeOptions options;
  options.budget_bytes = config_.budget_bytes;
  options.use_cache = engine_->options().use_cache;
  options.run_plan_lint = false;  // perf.* advisories are not gate-worthy
  options.operators = engine_->options().operators;
  try {
    (void)query::analyze_plan(*planned.plan, repo_, sink, options);
  } catch (const std::exception&) {
    // Analysis must never turn an executable query into a rejection: an
    // unexpected analyzer failure admits the plan and lets the eval path
    // report whatever is actually wrong.
    return;
  }
  if (!sink.reached(lint::Level::Error)) return;
  planned.admissible = false;
  planned.rejection.category = "analysis";
  for (const lint::Diagnostic& d : sink.diagnostics()) {
    if (planned.rejection.message.empty() && d.level == lint::Level::Error) {
      planned.rejection.message = d.rule + ": " + d.message;
    }
    planned.rejection.diagnostics.push_back(
        WireDiagnostic{d.rule, static_cast<std::uint32_t>(d.level),
                       d.location, d.message, d.hint});
  }
}

BusyPayload AnalysisService::busy_payload(const std::string& reason) const {
  BusyPayload busy;
  busy.retry_ms = config_.busy_retry_ms;
  busy.inflight = inflight_.load(std::memory_order_relaxed);
  busy.queue_wait_ms = queue_wait_ewma_ms_.load(std::memory_order_relaxed);
  busy.reason = reason;
  return busy;
}

void AnalysisService::note_queue_wait(double ms) {
  // Half-weight blend toward the newest sample; recent_queue_wait_ms()
  // additionally decays the value by age, so a single slow sample cannot
  // shed traffic forever.
  const double old = queue_wait_ewma_ms_.load(std::memory_order_relaxed);
  const double blended =
      queue_wait_stamp_ns_.load(std::memory_order_relaxed) == 0
          ? ms
          : 0.5 * old + 0.5 * ms;
  queue_wait_ewma_ms_.store(blended, std::memory_order_relaxed);
  queue_wait_stamp_ns_.store(now_ns(), std::memory_order_relaxed);
  queue_wait_hist_.observe(ms / 1000.0);
}

double AnalysisService::recent_queue_wait_ms() {
  bool expected = false;
  if (probe_outstanding_.compare_exchange_strong(expected, true,
                                                 std::memory_order_acq_rel)) {
    const std::int64_t submitted = now_ns();
    pool_->submit([this, submitted] {
      note_queue_wait(static_cast<double>(now_ns() - submitted) / 1e6);
      probe_outstanding_.store(false, std::memory_order_release);
    });
  }
  const std::int64_t stamp =
      queue_wait_stamp_ns_.load(std::memory_order_relaxed);
  if (stamp == 0) return 0.0;
  // Half-life of one second: a wait observed two seconds ago counts a
  // quarter of its value.
  const double age_s = static_cast<double>(now_ns() - stamp) / 1e9;
  return queue_wait_ewma_ms_.load(std::memory_order_relaxed) *
         std::pow(0.5, age_s);
}

QueryOutcome AnalysisService::handle_query(const std::string& text,
                                           std::uint64_t request_id) {
  obs::Span query_span("server.query");
  if (request_id != 0) query_span.tag(request_id);
  const std::int64_t t0 = now_ns();
  queries_.add();
  // The slow-query log entry for this query, filled in as the phases run.
  // Until a plan resolves, the canonical text is the raw query text.
  WireSlowQuery slow;
  slow.request_id = request_id;
  slow.canonical = text;
  slow.outcome = "error";
  auto finish = [&](QueryOutcome out) {
    out.server_ms = static_cast<double>(now_ns() - t0) / 1e6;
    service_time_.observe(out.server_ms / 1000.0);
    cache_bytes_.set(static_cast<double>(cache_.size_bytes()));
    slow.server_ms = out.server_ms;
    slow_log_.record(std::move(slow));
    return out;
  };

  if (config_.force_busy) {
    busy_.add();
    slow.outcome = "busy";
    QueryOutcome out;
    out.status = QueryOutcome::Status::Busy;
    out.busy = busy_payload("forced by configuration");
    return finish(out);
  }

  PlannedQuery planned;
  const std::int64_t plan_t0 = now_ns();
  try {
    planned = resolve_plan(text);
    slow.plan_ms = static_cast<double>(now_ns() - plan_t0) / 1e6;
  } catch (const QueryParseError& e) {
    slow.plan_ms = static_cast<double>(now_ns() - plan_t0) / 1e6;
    errors_.add();
    return finish(error_outcome("parse", e.what()));
  } catch (const Error& e) {
    slow.plan_ms = static_cast<double>(now_ns() - plan_t0) / 1e6;
    errors_.add();
    return finish(error_outcome("plan", e.what()));
  }
  slow.canonical = planned.canonical;

  if (!planned.admissible) {
    // Rejected by static analysis: refuse BEFORE touching the result
    // cache or the pool — an inadmissible plan must not occupy a
    // coalescing slot or trigger a computation.
    rejected_.add();
    errors_.add();
    slow.outcome = "rejected";
    QueryOutcome out;
    out.status = QueryOutcome::Status::Error;
    out.error = planned.rejection;
    return finish(out);
  }

  ResultCache::Lookup lookup;
  try {
    lookup = cache_.acquire(planned.key);
  } catch (const BusyShed& e) {
    busy_.add();
    slow.outcome = "busy";
    QueryOutcome out;
    out.status = QueryOutcome::Status::Busy;
    out.busy = e.payload();
    return finish(out);
  } catch (const Error& e) {
    // Coalesced onto a computation that failed.
    errors_.add();
    return finish(error_outcome("eval", e.what()));
  }

  if (lookup.outcome != ResultCache::Outcome::Owner) {
    const bool hit = lookup.outcome == ResultCache::Outcome::Hit;
    (hit ? cache_hits_ : coalesced_).add();
    slow.outcome = hit ? "hit" : "coalesced";
    QueryOutcome out;
    out.status = QueryOutcome::Status::Ok;
    out.served = hit ? Served::CacheHit : Served::Coalesced;
    out.result = std::move(lookup.result);
    return finish(out);
  }

  // Owner path: this thread must compute — unless admission sheds it.
  std::string shed_reason;
  const double wait_ms = recent_queue_wait_ms();
  if (inflight_.load(std::memory_order_relaxed) >= config_.max_inflight) {
    shed_reason = "computation ceiling reached";
  } else if (wait_ms > config_.busy_queue_wait_ms) {
    shed_reason = "executor queue wait degraded";
  }
  if (!shed_reason.empty()) {
    busy_.add();
    slow.outcome = "busy";
    QueryOutcome out;
    out.status = QueryOutcome::Status::Busy;
    out.busy = busy_payload(shed_reason);
    cache_.fail(planned.key,
                [busy = out.busy] { throw BusyShed(busy); });
    return finish(out);
  }

  inflight_.fetch_add(1, std::memory_order_relaxed);
  {
    const double level =
        static_cast<double>(inflight_.load(std::memory_order_relaxed));
    inflight_gauge_.set(level);
    inflight_peak_.record_max(level);
  }
  try {
    const std::int64_t compute_t0 = now_ns();
    obs::Span compute_span("server.compute");
    if (request_id != 0) compute_span.tag(request_id);
    if (config_.before_compute) config_.before_compute();
    query::QueryResult result = engine_->run_plan(*planned.plan);
    slow.compute_ms = static_cast<double>(now_ns() - compute_t0) / 1e6;

    CachedResult cached;
    {
      const std::int64_t ser_t0 = now_ns();
      OBS_SPAN("server.serialize");
      cached.canonical = result.canonical;
      cached.meta_digest = result.experiment.metadata().digest();
      cached.meta_blob = std::make_shared<const std::string>(
          to_cube_meta(result.experiment.metadata()));
      cached.body = std::make_shared<const std::string>(
          to_cube_binary_ref(result.experiment));
      slow.serialize_ms = static_cast<double>(now_ns() - ser_t0) / 1e6;
    }
    std::shared_ptr<const CachedResult> published =
        cache_.publish(planned.key, std::move(cached));
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    inflight_gauge_.set(
        static_cast<double>(inflight_.load(std::memory_order_relaxed)));
    computes_.add();
    slow.outcome = "computed";

    QueryOutcome out;
    out.status = QueryOutcome::Status::Ok;
    out.served = Served::Computed;
    out.result = std::move(published);
    return finish(out);
  } catch (...) {
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    inflight_gauge_.set(
        static_cast<double>(inflight_.load(std::memory_order_relaxed)));
    errors_.add();
    try {
      throw;
    } catch (const Error& e) {
      cache_.fail(planned.key,
                  [msg = std::string(e.what())] { throw Error(msg); });
      return finish(error_outcome("eval", e.what()));
    } catch (const std::exception& e) {
      cache_.fail(planned.key,
                  [msg = std::string(e.what())] { throw Error(msg); });
      return finish(error_outcome("internal", e.what()));
    }
  }
}

namespace {

void write_server_field(std::ostream& out, const char* key, double value,
                        bool first = false) {
  if (!first) out << ',';
  obs::write_json_string(out, key);
  out << ':';
  obs::write_json_number(out, value);
}

void write_server_field(std::ostream& out, const char* key,
                        std::uint64_t value, bool first = false) {
  if (!first) out << ',';
  obs::write_json_string(out, key);
  out << ':';
  obs::write_json_number(out, value);
}

}  // namespace

std::string AnalysisService::compose_stats_json(
    const std::vector<obs::MetricSample>& samples,
    const std::vector<WireSlowQuery>& slow) const {
  std::ostringstream out;
  out << "{\"server\":{";
  obs::write_json_string(out, "name");
  out << ':';
  obs::write_json_string(out, config_.self_profile_source);
  write_server_field(out, "uptime_s", uptime_s());
  write_server_field(out, "generation", repo_.generation());
  write_server_field(out, "queries", queries_.value());
  write_server_field(out, "cache_hits", cache_hits_.value());
  write_server_field(out, "coalesced", coalesced_.value());
  write_server_field(out, "computes", computes_.value());
  write_server_field(out, "busy", busy_.value());
  write_server_field(out, "rejected", rejected_.value());
  write_server_field(out, "errors", errors_.value());
  write_server_field(
      out, "inflight",
      static_cast<std::uint64_t>(inflight_.load(std::memory_order_relaxed)));
  write_server_field(out, "max_inflight",
                     static_cast<std::uint64_t>(config_.max_inflight));
  write_server_field(out, "cache_bytes",
                     static_cast<std::uint64_t>(cache_.size_bytes()));
  write_server_field(out, "cache_capacity_bytes",
                     static_cast<std::uint64_t>(config_.cache_capacity_bytes));
  write_server_field(out, "slow_log_threshold_ms",
                     config_.slow_log_threshold_ms);
  write_server_field(out, "slow_log_capacity",
                     static_cast<std::uint64_t>(config_.slow_log_capacity));
  write_server_field(
      out, "self_profile_interval_s",
      static_cast<std::uint64_t>(config_.self_profile_interval_s));
  write_server_field(out, "self_profile_windows", self_profile_windows());
  out << "},\"metrics\":";
  obs::write_metrics_json(out, samples);
  out << ",\"slow_queries\":[";
  bool first = true;
  for (const WireSlowQuery& entry : slow) {
    if (!first) out << ',';
    first = false;
    out << '{';
    write_server_field(out, "request_id", entry.request_id, true);
    out << ',';
    obs::write_json_string(out, "canonical");
    out << ':';
    obs::write_json_string(out, entry.canonical);
    out << ',';
    obs::write_json_string(out, "outcome");
    out << ':';
    obs::write_json_string(out, entry.outcome);
    write_server_field(out, "server_ms", entry.server_ms);
    write_server_field(out, "plan_ms", entry.plan_ms);
    write_server_field(out, "compute_ms", entry.compute_ms);
    write_server_field(out, "serialize_ms", entry.serialize_ms);
    write_server_field(out, "sequence", entry.sequence);
    out << '}';
  }
  out << "]}";
  return out.str();
}

StatsPayload AnalysisService::stats() const {
  StatsPayload payload;
  payload.samples = obs::MetricsRegistry::global().snapshot();
  payload.slow = slow_log_.snapshot();
  payload.json = compose_stats_json(payload.samples, payload.slow);
  return payload;
}

std::string AnalysisService::stats_json() const {
  return compose_stats_json(obs::MetricsRegistry::global().snapshot(),
                            slow_log_.snapshot());
}

std::string AnalysisService::health_json() const {
  std::ostringstream out;
  out << "{\"status\":\"ok\",";
  obs::write_json_string(out, "server");
  out << ':';
  obs::write_json_string(out, config_.self_profile_source);
  write_server_field(out, "protocol_version",
                     static_cast<std::uint64_t>(kProtocolVersion));
  write_server_field(out, "uptime_s", uptime_s());
  write_server_field(out, "generation", repo_.generation());
  write_server_field(
      out, "inflight",
      static_cast<std::uint64_t>(inflight_.load(std::memory_order_relaxed)));
  write_server_field(out, "queries", queries_.value());
  out << '}';
  return out.str();
}

double AnalysisService::uptime_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

void AnalysisService::housekeeping_tick() {
  (void)refresh();
  if (config_.self_profile_interval_s == 0) return;
  bool due = false;
  {
    ts::MutexLock lock(profile_mutex_);
    const std::int64_t now = now_ns();
    if (now >= next_window_ns_) {
      due = true;
      next_window_ns_ =
          now + static_cast<std::int64_t>(config_.self_profile_interval_s) *
                    1000000000;
    }
  }
  if (due) (void)export_self_profile_window();
}

std::string AnalysisService::export_self_profile_window() {
  std::unique_ptr<obs::MetricsRegistry> delta;
  {
    ts::MutexLock lock(profile_mutex_);
    delta = window_->advance();
  }
  const std::uint64_t seq =
      windows_stored_.fetch_add(1, std::memory_order_relaxed) + 1;
  char tag[16];
  std::snprintf(tag, sizeof(tag), "w%06llu",
                static_cast<unsigned long long>(seq));
  obs::SelfProfileOptions options;
  options.name = config_.self_profile_source + ".self." + tag;
  // Deliberately no thread list: every window then synthesizes the same
  // single "main" thread, so all windows of one server carry
  // digest-identical metadata and `difference` composes any two of them
  // bit-deterministically.
  Experiment window = obs::export_self_profile({}, *delta, options);
  window.set_attribute("cube.self.source", config_.self_profile_source);
  window.set_attribute("cube.self.window", std::to_string(seq));
  window.set_attribute("cube.self.interval_s",
                       std::to_string(config_.self_profile_interval_s));
  return repo_.store(window, RepoFormat::Binary);
}

bool AnalysisService::refresh() {
  // Pick up other processes' stores FIRST, then fold the index: once
  // enough dead records accumulate it is compacted into one sealed
  // segment (a no-op on legacy repositories and below the dead-record
  // threshold).  Compaction itself replays any records that land in the
  // window after refresh(), and either step bumps the repository
  // generation when the entry list changed.
  const std::uint64_t before = repo_.generation();
  repo_.refresh();
  repo_.compact_if_needed();
  if (repo_.generation() == before) return false;
  plan_epoch_.fetch_add(1, std::memory_order_acq_rel);
  ts::MutexLock lock(plan_mutex_);
  plan_cache_.clear();
  return true;
}

}  // namespace cube::server
