#include "server/protocol.hpp"

#include <cstring>
#include <sstream>

#include "common/posix_io.hpp"
#include "io/binary_codec.hpp"

namespace cube::server {

namespace {

/// Every decoder maps the codec's CheckError (truncation inside a field)
/// onto ProtocolError, so the session layer reports one structured
/// category for all malformed input.
template <typename Fn>
auto decoding(const char* what, Fn&& fn) {
  try {
    return fn();
  } catch (const CheckError& e) {
    throw ProtocolError(std::string("malformed ") + what + " payload: " +
                        e.detail());
  }
}

void require_done(const detail::BinaryDecoder& d, const char* what) {
  if (!d.done()) {
    throw ProtocolError(std::string("malformed ") + what +
                        " payload: trailing bytes after the last field");
  }
}

void put_u32(char* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<char>(v >> (8 * i));
}

void put_u64(char* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<char>(v >> (8 * i));
}

std::uint32_t get_u32(const char* in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(in[i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t get_u64(const char* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(in[i]))
         << (8 * i);
  }
  return v;
}

constexpr std::size_t kHeaderSize = 16;

bool known_type(std::uint32_t t) {
  return t >= static_cast<std::uint32_t>(MsgType::Hello) &&
         t <= static_cast<std::uint32_t>(MsgType::HealthOk);
}

}  // namespace

const char* msg_type_name(MsgType type) noexcept {
  switch (type) {
    case MsgType::Hello: return "Hello";
    case MsgType::HelloOk: return "HelloOk";
    case MsgType::Query: return "Query";
    case MsgType::Result: return "Result";
    case MsgType::Error: return "Error";
    case MsgType::Busy: return "Busy";
    case MsgType::Ping: return "Ping";
    case MsgType::Pong: return "Pong";
    case MsgType::Stats: return "Stats";
    case MsgType::StatsOk: return "StatsOk";
    case MsgType::Shutdown: return "Shutdown";
    case MsgType::ShutdownOk: return "ShutdownOk";
    case MsgType::Health: return "Health";
    case MsgType::HealthOk: return "HealthOk";
  }
  return "unknown";
}

std::size_t write_frame(int fd, MsgType type, std::string_view payload) {
  char header[kHeaderSize];
  put_u32(header, kFrameMagic);
  put_u32(header + 4, static_cast<std::uint32_t>(type));
  put_u64(header + 8, payload.size());
  // One header write, one payload write: both EINTR-safe and resumed
  // across partial transfers, so a frame can never be torn by a signal.
  write_full(fd, header, kHeaderSize);
  if (!payload.empty()) write_full(fd, payload.data(), payload.size());
  return kHeaderSize + payload.size();
}

std::optional<Frame> read_frame(int fd, std::uint64_t max_payload) {
  char header[kHeaderSize];
  const std::size_t got = read_full(fd, header, kHeaderSize);
  if (got == 0) return std::nullopt;  // clean EOF between frames
  if (got < kHeaderSize) {
    throw ProtocolError("stream ended inside a frame header (" +
                        std::to_string(got) + " of " +
                        std::to_string(kHeaderSize) + " bytes)");
  }
  if (get_u32(header) != kFrameMagic) {
    throw ProtocolError("bad frame magic (not a cubed peer?)");
  }
  const std::uint32_t raw_type = get_u32(header + 4);
  if (!known_type(raw_type)) {
    throw ProtocolError("unknown message type " + std::to_string(raw_type));
  }
  const std::uint64_t len = get_u64(header + 8);
  if (len > max_payload) {
    throw ProtocolError("frame payload of " + std::to_string(len) +
                        " bytes exceeds the " + std::to_string(max_payload) +
                        "-byte ceiling");
  }
  Frame frame;
  frame.type = static_cast<MsgType>(raw_type);
  frame.payload.resize(static_cast<std::size_t>(len));
  if (len > 0) {
    const std::size_t body = read_full(fd, frame.payload.data(),
                                       frame.payload.size());
    if (body < frame.payload.size()) {
      throw ProtocolError("stream ended inside a " +
                          std::string(msg_type_name(frame.type)) +
                          " payload (" + std::to_string(body) + " of " +
                          std::to_string(len) + " bytes)");
    }
  }
  return frame;
}

// --- payload codecs -------------------------------------------------------

std::string encode_hello(const HelloPayload& p) {
  std::ostringstream out;
  detail::BinaryEncoder e(out);
  e.u32(p.version);
  e.str(p.client);
  return out.str();
}

HelloPayload decode_hello(std::string_view payload) {
  return decoding("Hello", [&] {
    detail::BinaryDecoder d(payload);
    HelloPayload p;
    p.version = d.u32();
    p.client = d.str();
    require_done(d, "Hello");
    return p;
  });
}

std::string encode_hello_ok(const HelloOkPayload& p) {
  std::ostringstream out;
  detail::BinaryEncoder e(out);
  e.u32(p.version);
  e.str(p.server);
  e.u64(p.generation);
  return out.str();
}

HelloOkPayload decode_hello_ok(std::string_view payload) {
  return decoding("HelloOk", [&] {
    detail::BinaryDecoder d(payload);
    HelloOkPayload p;
    p.version = d.u32();
    p.server = d.str();
    p.generation = d.u64();
    require_done(d, "HelloOk");
    return p;
  });
}

std::string encode_query(const QueryPayload& p) {
  std::ostringstream out;
  detail::BinaryEncoder e(out);
  e.str(p.text);
  e.u32(p.flags);
  e.u64(p.request_id);
  return out.str();
}

QueryPayload decode_query(std::string_view payload) {
  return decoding("Query", [&] {
    detail::BinaryDecoder d(payload);
    QueryPayload p;
    p.text = d.str();
    p.flags = d.u32();
    // Peers that predate request ids end the payload here; decode as the
    // unset id rather than a framing violation.
    if (d.done()) return p;
    p.request_id = d.u64();
    require_done(d, "Query");
    return p;
  });
}

std::string encode_result(const ResultPayload& p) {
  std::ostringstream out;
  detail::BinaryEncoder e(out);
  e.u32(static_cast<std::uint32_t>(p.served));
  e.str(p.meta_blob);
  e.str(p.body);
  e.str(p.canonical);
  e.f64(p.server_ms);
  return out.str();
}

ResultPayload decode_result(std::string_view payload) {
  return decoding("Result", [&] {
    detail::BinaryDecoder d(payload);
    ResultPayload p;
    const std::uint32_t served = d.u32();
    if (served > static_cast<std::uint32_t>(Served::Coalesced)) {
      throw ProtocolError("malformed Result payload: unknown served mode " +
                          std::to_string(served));
    }
    p.served = static_cast<Served>(served);
    p.meta_blob = d.str();
    p.body = d.str();
    p.canonical = d.str();
    p.server_ms = d.f64();
    require_done(d, "Result");
    return p;
  });
}

std::string encode_error(const ErrorPayload& p) {
  std::ostringstream out;
  detail::BinaryEncoder e(out);
  e.str(p.category);
  e.str(p.message);
  e.u32(static_cast<std::uint32_t>(p.diagnostics.size()));
  for (const WireDiagnostic& diag : p.diagnostics) {
    e.str(diag.rule);
    e.u32(diag.level);
    e.str(diag.location);
    e.str(diag.message);
    e.str(diag.hint);
  }
  return out.str();
}

ErrorPayload decode_error(std::string_view payload) {
  return decoding("Error", [&] {
    detail::BinaryDecoder d(payload);
    ErrorPayload p;
    p.category = d.str();
    p.message = d.str();
    // Peers that predate structured diagnostics end the payload here;
    // treat that as an empty list rather than a framing violation.
    if (d.done()) return p;
    const std::uint32_t n = d.u32();
    p.diagnostics.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      WireDiagnostic diag;
      diag.rule = d.str();
      diag.level = d.u32();
      diag.location = d.str();
      diag.message = d.str();
      diag.hint = d.str();
      p.diagnostics.push_back(std::move(diag));
    }
    require_done(d, "Error");
    return p;
  });
}

std::string encode_busy(const BusyPayload& p) {
  std::ostringstream out;
  detail::BinaryEncoder e(out);
  e.u32(p.retry_ms);
  e.u64(p.inflight);
  e.f64(p.queue_wait_ms);
  e.str(p.reason);
  return out.str();
}

BusyPayload decode_busy(std::string_view payload) {
  return decoding("Busy", [&] {
    detail::BinaryDecoder d(payload);
    BusyPayload p;
    p.retry_ms = d.u32();
    p.inflight = d.u64();
    p.queue_wait_ms = d.f64();
    p.reason = d.str();
    require_done(d, "Busy");
    return p;
  });
}

std::string encode_stats(const StatsPayload& p) {
  std::ostringstream out;
  detail::BinaryEncoder e(out);
  e.u32(static_cast<std::uint32_t>(p.samples.size()));
  for (const obs::MetricSample& s : p.samples) {
    e.str(s.name);
    e.u32(static_cast<std::uint32_t>(s.kind));
    e.u32(static_cast<std::uint32_t>(s.unit));
    e.f64(s.value);
    e.u64(s.count);
    e.f64(s.min);
    e.f64(s.max);
    e.f64(s.p50);
    e.f64(s.p90);
    e.f64(s.p99);
  }
  e.str(p.json);
  e.u32(static_cast<std::uint32_t>(p.slow.size()));
  for (const WireSlowQuery& q : p.slow) {
    e.u64(q.request_id);
    e.str(q.canonical);
    e.str(q.outcome);
    e.f64(q.server_ms);
    e.f64(q.plan_ms);
    e.f64(q.compute_ms);
    e.f64(q.serialize_ms);
    e.u64(q.sequence);
  }
  return out.str();
}

StatsPayload decode_stats(std::string_view payload) {
  return decoding("StatsOk", [&] {
    detail::BinaryDecoder d(payload);
    StatsPayload p;
    const std::uint32_t n = d.u32();
    p.samples.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      obs::MetricSample s;
      s.name = d.str();
      s.kind = static_cast<obs::InstrumentKind>(d.u32());
      s.unit = static_cast<obs::SampleUnit>(d.u32());
      s.value = d.f64();
      s.count = d.u64();
      s.min = d.f64();
      s.max = d.f64();
      s.p50 = d.f64();
      s.p90 = d.f64();
      s.p99 = d.f64();
      p.samples.push_back(std::move(s));
    }
    // The json document and the slow-query list are appended after the
    // sample list; a payload that ends at either boundary (a minimal
    // StatsOk) decodes with the missing fields empty.
    if (d.done()) return p;
    p.json = d.str();
    if (d.done()) return p;
    const std::uint32_t slow_n = d.u32();
    p.slow.reserve(slow_n);
    for (std::uint32_t i = 0; i < slow_n; ++i) {
      WireSlowQuery q;
      q.request_id = d.u64();
      q.canonical = d.str();
      q.outcome = d.str();
      q.server_ms = d.f64();
      q.plan_ms = d.f64();
      q.compute_ms = d.f64();
      q.serialize_ms = d.f64();
      q.sequence = d.u64();
      p.slow.push_back(std::move(q));
    }
    require_done(d, "StatsOk");
    return p;
  });
}

std::string encode_health(const HealthPayload& p) {
  std::ostringstream out;
  detail::BinaryEncoder e(out);
  e.str(p.json);
  return out.str();
}

HealthPayload decode_health(std::string_view payload) {
  return decoding("HealthOk", [&] {
    detail::BinaryDecoder d(payload);
    HealthPayload p;
    p.json = d.str();
    require_done(d, "HealthOk");
    return p;
  });
}

}  // namespace cube::server
