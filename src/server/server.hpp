// CubedServer: the transport shell around AnalysisService.
//
// Listens on a unix-domain socket; every accepted connection gets a
// session thread running the frame loop (Hello handshake, then
// Query/Ping/Stats/Shutdown).  Sessions share ONE AnalysisService — and
// through it one plan cache, one result cache, and one thread pool — so
// identical queries from different clients hit or coalesce.
//
// Per-session state is only the set of metadata digests already sent:
// a Result carries its CUBEMET1 blob the first time a session sees that
// digest and an empty meta_blob afterwards, mirroring the repository's
// store-once blob layout on the wire.
//
// A housekeeping thread calls AnalysisService::refresh() periodically, so
// experiments appended to the repository by a concurrent CLI process
// become queryable without restarting the daemon.
//
// Failure containment: a ProtocolError on one session answers that client
// with a structured Error frame and closes that connection; IoError (the
// peer vanished) closes it quietly.  Neither touches other sessions or
// the daemon.  start() ignores SIGPIPE process-wide — a client dying
// mid-response must surface as EPIPE through the EINTR-safe writers, not
// kill the process.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/service.hpp"

namespace cube::server {

struct ServerConfig {
  std::filesystem::path socket_path;
  /// Server name reported in HelloOk.
  std::string name = "cubed";
  std::uint64_t max_payload = kDefaultMaxPayload;
  /// Period of the repository refresh housekeeping; 0 disables it.
  unsigned refresh_interval_ms = 500;
  /// Honor Shutdown frames from clients (the CI smoke job and tests stop
  /// the daemon this way).
  bool allow_shutdown = true;
};

class CubedServer {
 public:
  CubedServer(AnalysisService& service, ServerConfig config);
  ~CubedServer();

  CubedServer(const CubedServer&) = delete;
  CubedServer& operator=(const CubedServer&) = delete;

  /// Binds the socket and spawns the acceptor and housekeeping threads.
  /// Throws IoError if the socket cannot be bound.
  void start();

  /// Blocks until a shutdown is requested (Shutdown frame or stop()).
  void wait();

  /// Stops accepting, unblocks and joins every session, removes the
  /// socket.  Idempotent; the destructor calls it.
  void stop();

  [[nodiscard]] std::size_t sessions_accepted() const noexcept {
    return accepted_.load(std::memory_order_relaxed);
  }

 private:
  /// fd is written once at accept time and closed exactly once when the
  /// session is reaped (or in stop()); the session thread itself never
  /// closes it, so stop() can safely shutdown() a live descriptor to
  /// unblock the read.
  struct Session {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void session_loop(Session& session);
  void housekeeping_loop();
  void request_shutdown();
  void reap_finished_sessions();

  AnalysisService& service_;
  ServerConfig config_;

  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> accepted_{0};
  std::thread acceptor_;
  std::thread housekeeper_;

  std::mutex mutex_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
  bool started_ = false;
  bool stopped_ = false;
  std::vector<std::unique_ptr<Session>> sessions_;
};

}  // namespace cube::server
