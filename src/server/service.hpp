// AnalysisService: the daemon's query-serving core, independent of any
// transport so tests and bench_server can drive it in-process.
//
// A query travels: plan cache (text -> content-addressed root key; planned
// at most once per repository epoch) -> shared ResultCache (key -> wire
// bytes; identical concurrent misses coalesce onto one computation) ->
// QueryEngine::run_plan on the shared ThreadPool (miss only).  A hit or a
// coalesced wait therefore never re-plans, never reloads operands, and
// never re-serializes — it hands back the cached frame bytes.
//
// ADMISSION CONTROL applies to the compute path: when the executor's
// recent queue wait (measured by probe tasks through the same pool the
// DAG runs on, exported as the server.queue_wait histogram) degrades past
// ServiceConfig::busy_queue_wait_ms, or more than max_inflight
// computations are already running, the service sheds the miss with a
// structured Busy outcome instead of queueing unboundedly.  Cache hits
// are still served while shedding — they cost a map lookup, not pool
// time.  Sessions coalesced onto a shed computation receive Busy too.
//
// STATIC ADMISSION runs before any of that: each plan is analyzed once
// per plan-cache entry (query/analyze.hpp — metadata and severity-blob
// headers only, never severity payload).  A semantically incompatible
// plan, or one whose predicted peak resident memory exceeds
// ServiceConfig::budget_bytes, is rejected with an Error outcome of
// category "analysis" carrying the analyzer's plan.*/cost.* findings as
// structured WireDiagnostics — the daemon never spends pool time or
// cache space discovering at eval time what metadata already proves.
//
// All entry points are thread-safe; one service instance serves every
// session of the daemon.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.hpp"
#include "common/thread_safety.hpp"
#include "io/repository.hpp"
#include "obs/metrics.hpp"
#include "obs/window.hpp"
#include "query/engine.hpp"
#include "server/protocol.hpp"
#include "server/result_cache.hpp"
#include "server/telemetry.hpp"

namespace cube::server {

struct ServiceConfig {
  /// Executor worker threads; 0 picks ThreadPool::default_threads().
  std::size_t threads = 0;
  /// Computations allowed in flight before misses shed; 0 derives
  /// 2 * threads.
  std::size_t max_inflight = 0;
  /// Shed misses when the recent executor queue wait exceeds this.
  double busy_queue_wait_ms = 50.0;
  /// Backoff suggested to shed clients.
  std::uint32_t busy_retry_ms = 100;
  /// Byte budget of the shared result cache.
  std::size_t cache_capacity_bytes = 256ull << 20;
  /// Forwarded to QueryOptions.
  bool store_derived = true;
  bool validate_loads = false;
  /// Reject plans whose static analysis finds error-level plan.*
  /// incompatibilities before they reach the compute path (cubed
  /// --no-admission-analysis disables).
  bool admission_analysis = true;
  /// Peak-resident byte budget for one query's predicted execution; a
  /// plan analyzed above it is rejected pre-compute (cost.over-budget).
  /// 0 disables the budget gate.  Requires admission_analysis.
  std::uint64_t budget_bytes = 0;
  /// Shed EVERY query unconditionally — deterministic Busy for tests and
  /// the CI smoke job (cubed --force-busy).
  bool force_busy = false;
  /// Slow-query log: the slow_log_capacity worst queries at or above
  /// slow_log_threshold_ms wall time are kept and dumped via Stats
  /// (cubed --slow-log-threshold / --slow-log-size).  Capacity 0
  /// disables the log.
  double slow_log_threshold_ms = 0.0;
  std::size_t slow_log_capacity = 32;
  /// Store a windowed self-profile experiment into the served repository
  /// every this many seconds of housekeeping time; 0 disables
  /// (cubed --self-profile-interval).
  unsigned self_profile_interval_s = 0;
  /// Value of the "cube.self.source" attribute on stored self-profile
  /// windows, and the prefix of their experiment names (normally the
  /// server name).
  std::string self_profile_source = "cubed";
  /// Test hook: runs on the owner path after admission, before execution.
  /// Lets tests hold a computation open while concurrent sessions coalesce
  /// onto it.
  std::function<void()> before_compute;
};

/// What one query produced, transport-agnostic.  The daemon maps this
/// onto a Result / Busy / Error frame; in-process callers read it
/// directly.
struct QueryOutcome {
  enum class Status { Ok, Busy, Error };
  Status status = Status::Error;
  Served served = Served::Computed;            ///< Ok
  std::shared_ptr<const CachedResult> result;  ///< Ok
  BusyPayload busy;                            ///< Busy
  ErrorPayload error;                          ///< Error
  double server_ms = 0.0;
};

class AnalysisService {
 public:
  AnalysisService(ExperimentRepository& repo, ServiceConfig config = {});
  ~AnalysisService();

  AnalysisService(const AnalysisService&) = delete;
  AnalysisService& operator=(const AnalysisService&) = delete;

  /// Serves one query.  Never throws for query-level failures — they come
  /// back as Status::Error with a category ("parse", "plan", "analysis",
  /// "eval", "internal"); "analysis" rejections carry the static
  /// analyzer's findings in ErrorPayload::diagnostics.  `request_id` is
  /// the client-generated id from the Query payload (0 = unset): it tags
  /// the server.query span and the slow-query log entry.
  [[nodiscard]] QueryOutcome handle_query(const std::string& text,
                                          std::uint64_t request_id = 0);

  /// The StatsOk payload: registry snapshot (with histogram quantiles),
  /// the slow-query log, and the full JSON telemetry document.
  [[nodiscard]] StatsPayload stats() const;

  /// The telemetry document: {"server":{uptime, admission and cache
  /// state, served counts}, "metrics":{…}, "slow_queries":[…]}.
  /// Byte-deterministic for a given server state.
  [[nodiscard]] std::string stats_json() const;

  /// The HealthOk document: {"status","uptime_s","generation","inflight",
  /// "queries","protocol_version"}.
  [[nodiscard]] std::string health_json() const;

  /// Seconds since the service was constructed.
  [[nodiscard]] double uptime_s() const;

  /// One housekeeping tick: refresh() plus, when due, a self-profile
  /// window export.  The daemon's housekeeping thread calls this every
  /// refresh interval.
  void housekeeping_tick();

  /// Closes the current self-profile window NOW (regardless of the
  /// interval) and stores it as a frozen experiment in the served
  /// repository; returns the stored id.  housekeeping_tick() calls this
  /// on the interval; tests and drills call it directly.
  std::string export_self_profile_window();

  /// Windows stored so far.
  [[nodiscard]] std::uint64_t self_profile_windows() const noexcept {
    return windows_stored_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const SlowQueryLog& slow_log() const noexcept {
    return slow_log_;
  }

  /// Re-reads the repository index if another process changed it; on a
  /// change the plan cache is invalidated (selector resolution and operand
  /// digests may differ).  The result cache stays — its keys are content
  /// digests, which are valid forever.  Returns true if the index changed.
  bool refresh();

  [[nodiscard]] std::uint64_t generation() const noexcept {
    return repo_.generation();
  }
  [[nodiscard]] const ServiceConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] ResultCache& cache() noexcept { return cache_; }
  [[nodiscard]] ThreadPool& pool() noexcept { return *pool_; }

 private:
  /// A planned query text: the root cache key plus the plan itself, kept
  /// so an uncached key can execute without re-planning.
  struct PlannedQuery {
    std::uint64_t epoch = 0;
    std::uint64_t key = 0;
    std::string canonical;
    std::shared_ptr<const query::QueryPlan> plan;
    /// Static-admission verdict, computed once per plan-cache entry (the
    /// analysis is a pure function of the plan and the repository epoch,
    /// so repeats of a rejected query never re-analyze).
    bool admissible = true;
    ErrorPayload rejection;  ///< category "analysis" when !admissible
  };

  [[nodiscard]] PlannedQuery resolve_plan(const std::string& text);
  /// Renders the telemetry document from an already-taken registry
  /// snapshot and slow-log snapshot (stats() reuses the snapshots it
  /// ships on the wire instead of taking them twice).
  [[nodiscard]] std::string compose_stats_json(
      const std::vector<obs::MetricSample>& samples,
      const std::vector<WireSlowQuery>& slow) const;
  /// Runs the static plan analyzer and records the admission verdict on
  /// `planned` (never throws; an analyzer failure admits the plan).
  void analyze_admission(PlannedQuery& planned);
  [[nodiscard]] BusyPayload busy_payload(const std::string& reason) const;
  /// Samples the executor queue wait with a probe task (at most one in
  /// flight) and returns the decayed recent wait in ms.
  double recent_queue_wait_ms();
  void note_queue_wait(double ms);

  ServiceConfig config_;
  ExperimentRepository& repo_;
  ResultCache cache_;

  ts::Mutex plan_mutex_;
  std::unordered_map<std::string, PlannedQuery> plan_cache_
      CUBE_GUARDED_BY(plan_mutex_);
  /// Bumped when refresh() sees an external index change; plan cache
  /// entries from older epochs are invalid.
  std::atomic<std::uint64_t> plan_epoch_{0};

  std::atomic<std::size_t> inflight_{0};

  // Queue-wait probe state: an exponentially weighted recent wait that
  // decays toward zero while the pool is idle, so a past overload cannot
  // shed the first query after a quiet period.
  std::atomic<bool> probe_outstanding_{false};
  std::atomic<double> queue_wait_ewma_ms_{0.0};
  std::atomic<std::int64_t> queue_wait_stamp_ns_{0};

  obs::Counter& queries_;
  obs::Counter& cache_hits_;
  obs::Counter& coalesced_;
  obs::Counter& computes_;
  obs::Counter& busy_;
  obs::Counter& rejected_;
  obs::Counter& errors_;
  obs::Histogram& queue_wait_hist_;
  obs::Histogram& service_time_;
  obs::Gauge& inflight_gauge_;
  obs::Gauge& inflight_peak_;  ///< high-watermark (Gauge::record_max)
  obs::Gauge& cache_bytes_;

  /// Service start, for uptime_s().
  std::chrono::steady_clock::time_point start_;

  SlowQueryLog slow_log_;

  // Self-profile windowing: the registry window and its schedule, all
  // behind one mutex (the housekeeping thread and direct
  // export_self_profile_window() calls serialize here).
  ts::Mutex profile_mutex_;
  std::unique_ptr<obs::RegistryWindow> window_ CUBE_GUARDED_BY(profile_mutex_);
  std::int64_t next_window_ns_ CUBE_GUARDED_BY(profile_mutex_) = 0;
  std::atomic<std::uint64_t> windows_stored_{0};

  // pool_ is declared after the probe state (its tasks touch it) and
  // engine_ last (it runs on the pool): destruction joins the workers
  // first, then tears down what they referenced.
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<query::QueryEngine> engine_;
};

}  // namespace cube::server
