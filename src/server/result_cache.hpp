// Shared cross-client result cache with in-flight coalescing.
//
// The cache maps a planner cache key (the content-addressed digest of a
// query's root node, src/query/planner.hpp) onto the SERIALIZED result:
// the CUBEBIN2 body bytes and the CUBEMET1 metadata blob bytes that a
// Result frame carries.  Caching the wire bytes rather than Experiment
// objects makes a hit a pure frame write — no re-plan, no operand reload,
// no re-serialization — and lets every session share one immutable copy
// through shared_ptr.
//
// Identical concurrent misses COALESCE: the first acquirer of a key
// becomes the owner and computes; later acquirers block on the slot and
// receive the owner's published result (Outcome::Coalesced).  If the
// owner fails, the slot is removed and every waiter throws a fresh copy
// of the owner's error; the next acquirer starts a fresh computation.
//
// Ready entries are evicted least-recently-used by byte budget.  In-flight
// slots are never evicted.  All methods are thread-safe.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/thread_safety.hpp"

namespace cube::server {

/// An immutable, fully serialized query result shared across sessions.
struct CachedResult {
  std::string canonical;              ///< canonical root expression
  std::uint64_t meta_digest = 0;      ///< digest of the metadata blob
  std::shared_ptr<const std::string> meta_blob;  ///< CUBEMET1 bytes
  std::shared_ptr<const std::string> body;       ///< CUBEBIN2 bytes

  [[nodiscard]] std::size_t bytes() const noexcept {
    return canonical.size() + (meta_blob ? meta_blob->size() : 0) +
           (body ? body->size() : 0);
  }
};

class ResultCache {
 public:
  /// How an acquire() resolved — mirrors protocol Served so the service
  /// can report the sharing mode to the client verbatim.
  enum class Outcome {
    Owner,      ///< miss: the caller must compute, then publish() or fail()
    Hit,        ///< a ready entry was served
    Coalesced,  ///< blocked on another caller's in-flight computation
  };

  struct Lookup {
    Outcome outcome = Outcome::Owner;
    /// Set for Hit and Coalesced; null for Owner.
    std::shared_ptr<const CachedResult> result;
  };

  explicit ResultCache(std::size_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Looks the key up, blocking while another thread owns an in-flight
  /// computation for it.  An Owner outcome OBLIGES the caller to call
  /// publish(key, ...) or fail(key, ...) exactly once — otherwise every
  /// later acquirer of the key blocks forever.  Rethrows the owner's
  /// exception if the computation this call coalesced onto fails.
  /// (The wait loop re-acquires mutex_ through the condition variable,
  /// which the thread-safety analysis cannot follow.)
  [[nodiscard]] Lookup acquire(std::uint64_t key)
      CUBE_NO_THREAD_SAFETY_ANALYSIS;

  /// Completes an owned computation: stores the result, wakes waiters,
  /// and evicts least-recently-used ready entries over the byte budget.
  /// Returns the shared immutable result so the owner can serve it
  /// without a second lookup.
  std::shared_ptr<const CachedResult> publish(std::uint64_t key,
                                              CachedResult result);

  /// Aborts an owned computation: removes the slot and wakes every waiter
  /// currently coalesced onto it; each waiter invokes `rethrow`, which
  /// must throw a FRESHLY CONSTRUCTED exception on every call.  A fresh
  /// object per waiter — rather than one shared exception_ptr — keeps
  /// concurrent what() reads off a shared buffer (std::runtime_error's
  /// internal string is reference-counted regardless of the string ABI,
  /// so sharing one exception across catching threads races its
  /// destruction).
  void fail(std::uint64_t key, std::function<void()> rethrow);

  [[nodiscard]] std::size_t size_bytes() const;
  [[nodiscard]] std::size_t entries() const;
  [[nodiscard]] std::uint64_t evictions() const;

  /// Drops every ready entry (in-flight slots are untouched).  Used when
  /// the repository generation changes underneath the server.
  void clear();

 private:
  struct Slot {
    enum class State { InFlight, Ready, Failed };
    State state = State::InFlight;
    std::shared_ptr<const CachedResult> result;  // Ready
    std::function<void()> rethrow;               // Failed; throws when called
    std::list<std::uint64_t>::iterator lru;      // Ready only
  };

  /// Evicts LRU ready entries until within budget.
  void evict_locked() CUBE_REQUIRES(mutex_);

  const std::size_t capacity_bytes_;
  mutable ts::Mutex mutex_;
  std::condition_variable cv_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Slot>> slots_
      CUBE_GUARDED_BY(mutex_);
  /// Most-recently-used first; ready keys only.
  std::list<std::uint64_t> lru_ CUBE_GUARDED_BY(mutex_);
  std::size_t ready_bytes_ CUBE_GUARDED_BY(mutex_) = 0;
  std::uint64_t evictions_ CUBE_GUARDED_BY(mutex_) = 0;
};

}  // namespace cube::server
