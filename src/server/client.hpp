// CubeClient: a thin synchronous client for the cubed daemon.
//
// One client is one session over the unix-domain socket: connect, Hello
// handshake, then request/response frames.  Results decode back into
// Experiment through the session's metadata store — the server ships a
// CUBEMET1 blob only the first time a metadata digest appears, and the
// client interns the decoded Metadata so every later result over the
// same digest shares the instance (pointer-equal, like the repository's
// interner).
//
// NOT thread-safe: one CubeClient per thread (sessions are cheap; the
// daemon multiplexes them onto a shared service).
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>

#include "common/error.hpp"
#include "model/experiment.hpp"
#include "server/protocol.hpp"

namespace cube::server {

/// The server shed the request (admission control).  Carries the
/// structured Busy payload so callers can honor retry_ms.
class BusyError : public Error {
 public:
  explicit BusyError(BusyPayload payload)
      : Error("server busy: " + payload.reason +
              " (retry in " + std::to_string(payload.retry_ms) + " ms)"),
        payload_(std::move(payload)) {}
  [[nodiscard]] const BusyPayload& payload() const noexcept {
    return payload_;
  }

 private:
  BusyPayload payload_;
};

/// The server answered with an Error frame (the query failed remotely).
class RemoteError : public Error {
 public:
  explicit RemoteError(ErrorPayload payload)
      : Error(payload.category + ": " + payload.message),
        payload_(std::move(payload)) {}
  [[nodiscard]] const ErrorPayload& payload() const noexcept {
    return payload_;
  }

 private:
  ErrorPayload payload_;
};

struct ClientConfig {
  std::filesystem::path socket_path;
  /// Client name reported in Hello.
  std::string name = "cube_client";
  std::uint64_t max_payload = kDefaultMaxPayload;
  /// Storage of decoded result experiments.
  StorageKind storage = StorageKind::Dense;
};

struct ClientResult {
  Experiment experiment;
  Served served = Served::Computed;
  std::string canonical;
  double server_ms = 0.0;       ///< service time the server measured
  std::size_t wire_bytes = 0;   ///< Result payload size on the wire
  bool meta_shipped = false;    ///< this result carried its CUBEMET1 blob
};

class CubeClient {
 public:
  /// Connects and performs the Hello handshake.  Throws IoError if the
  /// daemon is not reachable, ProtocolError on a version mismatch.
  explicit CubeClient(ClientConfig config);
  ~CubeClient();

  CubeClient(const CubeClient&) = delete;
  CubeClient& operator=(const CubeClient&) = delete;

  /// Runs one query remotely and decodes the result.  Throws BusyError
  /// when shed, RemoteError on a server-side failure, ProtocolError /
  /// IoError on a broken session.  `request_id` tags the query on the
  /// server (span annotations, slow-query log); 0 auto-assigns the next
  /// session-local id — see last_request_id().
  [[nodiscard]] ClientResult query(const std::string& text,
                                   std::uint64_t request_id = 0);

  /// Like query() but returns the raw payload without decoding the
  /// experiment (bench_server measures wire latency, not decode time).
  [[nodiscard]] ResultPayload query_raw(const std::string& text,
                                        std::uint64_t request_id = 0);

  [[nodiscard]] StatsPayload stats();

  /// Fetches the HealthOk JSON document.  Served off the compute pool:
  /// responds even when the daemon is saturated.
  [[nodiscard]] HealthPayload health();

  void ping();

  /// Asks the daemon to shut down; returns once ShutdownOk arrives.
  void shutdown_server();

  /// Repository generation the server reported at handshake.
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_;
  }
  [[nodiscard]] const std::string& server_name() const noexcept {
    return server_name_;
  }

  /// The request id the most recent query()/query_raw() carried (useful
  /// for correlating with the daemon's slow-query log and trace spans).
  [[nodiscard]] std::uint64_t last_request_id() const noexcept {
    return last_request_id_;
  }

 private:
  /// Sends `request` and reads the response frame, translating Error
  /// frames into RemoteError.
  Frame round_trip(MsgType type, std::string_view payload,
                   MsgType expected);

  ClientConfig config_;
  int fd_ = -1;
  std::uint64_t generation_ = 0;
  std::string server_name_;
  /// Auto-assigned request ids: seeded per session (pid and connect time
  /// mixed) so ids from different clients against one daemon are
  /// distinguishable, then incremented per query.
  std::uint64_t next_request_id_ = 1;
  std::uint64_t last_request_id_ = 0;
  /// Session metadata store: digest -> interned instance.
  std::map<std::uint64_t, std::shared_ptr<const Metadata>> metas_;
};

}  // namespace cube::server
